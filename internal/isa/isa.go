// Package isa defines the WaveScalar instruction set architecture used by
// the simulator: opcodes, static instructions, dataflow targets, tags,
// tokens, and the wave-ordered memory annotations that accompany every
// memory operation.
//
// A WaveScalar binary is a dataflow graph. Each Instruction names the
// consumers of its result explicitly (its Dests), and executes according to
// the dataflow firing rule: once a token has arrived for every input port,
// the instruction fires. Dynamic instances of the same static instruction
// are disambiguated by the Tag carried on every token: a (thread, wave)
// pair. Waves correspond to runs of code such as a single loop iteration;
// WaveAdvance instructions increment the wave number along loop back edges
// so that tokens from different iterations never alias in the matching
// tables.
package isa

import "fmt"

// Opcode identifies the operation a static instruction performs.
type Opcode uint8

// The WaveScalar opcode set. Arithmetic operates on 64-bit values; signed
// operations interpret them as two's complement, floating-point operations
// as IEEE-754 bit patterns.
const (
	OpNop Opcode = iota // identity; forwards input 0

	// Constant and parameter introduction.
	OpConst // fires on a trigger token (port 0) and emits Imm
	OpParam // placeholder resolved by the loader; fires on trigger, emits the bound parameter

	// Integer arithmetic and logic: ports 0 and 1 are the operands.
	OpAdd
	OpSub
	OpMul
	OpDiv // unsigned; divide by zero yields all-ones
	OpRem // unsigned remainder; by zero yields the dividend
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr  // logical
	OpAddI // input 0 + Imm
	OpMulI // input 0 * Imm
	OpAndI
	OpShlI
	OpShrI

	// Comparisons produce 0 or 1.
	OpEQ
	OpNE
	OpLT  // signed
	OpLE  // signed
	OpULT // unsigned
	OpLTI // signed input0 < Imm

	// Floating point (IEEE-754 double carried in the 64-bit payload).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFLT // produces 0 or 1
	OpI2F // signed integer to double
	OpF2I // double to signed integer (truncating)

	// Dataflow control.
	OpSteer   // port 0 data, port 2 predicate (single bit): forward data to DestsT if true, Dests if false
	OpSelect  // port 0, port 1 data, port 2 predicate: forward port0 if predicate true else port1
	OpWaveAdv // forward input 0 with the tag's wave number incremented

	// Memory. Every memory operation carries a Mem annotation.
	OpLoad   // port 0 address; result is the 64-bit word at that address
	OpStore  // port 0 address, port 1 data; emits the stored value to Dests (often none)
	OpMemNop // port 0 trigger; participates in wave ordering but touches no memory

	// Termination.
	OpHalt // port 0 trigger; signals that the issuing thread has finished

	opcodeCount // sentinel
)

var opcodeNames = [...]string{
	OpNop:     "nop",
	OpConst:   "const",
	OpParam:   "param",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpRem:     "rem",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpAddI:    "addi",
	OpMulI:    "muli",
	OpAndI:    "andi",
	OpShlI:    "shli",
	OpShrI:    "shri",
	OpEQ:      "eq",
	OpNE:      "ne",
	OpLT:      "lt",
	OpLE:      "le",
	OpULT:     "ult",
	OpLTI:     "lti",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpFLT:     "flt",
	OpI2F:     "i2f",
	OpF2I:     "f2i",
	OpSteer:   "steer",
	OpSelect:  "select",
	OpWaveAdv: "wadv",
	OpLoad:    "load",
	OpStore:   "store",
	OpMemNop:  "memnop",
	OpHalt:    "halt",
}

// String returns the assembly mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpcodeByName maps an assembly mnemonic back to its Opcode.
func OpcodeByName(name string) (Opcode, bool) {
	for op, n := range opcodeNames {
		if n == name {
			return Opcode(op), true
		}
	}
	return 0, false
}

// NumInputs reports how many input ports an opcode requires before it can
// fire.
func (op Opcode) NumInputs() int {
	switch op {
	case OpNop, OpConst, OpParam, OpWaveAdv, OpLoad, OpMemNop, OpHalt,
		OpAddI, OpMulI, OpAndI, OpShlI, OpShrI, OpLTI, OpI2F, OpF2I:
		return 1
	case OpSteer:
		return 2 // data on port 0, predicate on port 2 (counted as 2 distinct ports)
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// HasImmediate reports whether the opcode consumes its Imm field.
func (op Opcode) HasImmediate() bool {
	switch op {
	case OpConst, OpParam, OpAddI, OpMulI, OpAndI, OpShlI, OpShrI, OpLTI:
		return true
	}
	return false
}

// IsMemory reports whether the opcode participates in wave-ordered memory.
func (op Opcode) IsMemory() bool {
	return op == OpLoad || op == OpStore || op == OpMemNop
}

// IsFloat reports whether the opcode uses the (pipelined) floating point unit.
func (op Opcode) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFLT, OpI2F, OpF2I:
		return true
	}
	return false
}

// Countable reports whether executing the opcode counts toward AIPC
// (Alpha-equivalent instructions per cycle). WaveScalar-specific overhead
// instructions — steering, wave management, nops, constants folded into
// Alpha immediates — are executed and timed but not counted, mirroring the
// paper's metric.
func (op Opcode) Countable() bool {
	switch op {
	case OpNop, OpConst, OpParam, OpSteer, OpWaveAdv, OpMemNop, OpHalt:
		return false
	}
	return true
}

// InstID indexes a static instruction within a Program.
type InstID int32

// NoInst is the nil InstID.
const NoInst InstID = -1

// PortID selects one of an instruction's (up to three) input ports. Port 2
// is the single-bit predicate port on steer and select instructions,
// mirroring the special one-bit third matching-table column in the RTL.
type PortID uint8

// Target names a consumer: an input port of a static instruction.
type Target struct {
	Inst InstID
	Port PortID
}

// String renders a target as "inst.port".
func (t Target) String() string { return fmt.Sprintf("%d.%d", t.Inst, t.Port) }

// Sequence numbers used by wave-ordered memory annotations.
const (
	// SeqNone marks the absence of a predecessor (the wave's first
	// operation) or successor (the wave's last operation).
	SeqNone int32 = -1
	// SeqWild is the '?' wildcard: the neighbour in the chain is not
	// statically known because of a branch.
	SeqWild int32 = -2
)

// MemInfo is the wave-ordered memory annotation attached to every memory
// operation: the operation's sequence number within its wave and the
// sequence numbers of its statically known predecessor and successor
// (SeqWild where control flow makes them unknown).
type MemInfo struct {
	Pred int32
	Seq  int32
	Succ int32
}

// String renders the annotation as "<pred,seq,succ>" using '.' for none
// and '?' for wildcards.
func (m MemInfo) String() string {
	f := func(s int32) string {
		switch s {
		case SeqNone:
			return "."
		case SeqWild:
			return "?"
		default:
			return fmt.Sprintf("%d", s)
		}
	}
	return fmt.Sprintf("<%s,%s,%s>", f(m.Pred), f(m.Seq), f(m.Succ))
}

// Instruction is one static node of the dataflow graph.
type Instruction struct {
	ID   InstID
	Op   Opcode
	Imm  uint64 // immediate operand, constant value, or parameter index
	Name string // optional label for assembly and diagnostics

	// Dests are the consumers of the result. For OpSteer, Dests receives
	// the data when the predicate is false and DestsT when it is true;
	// all other opcodes use only Dests.
	Dests  []Target
	DestsT []Target

	// Mem is the wave-ordering annotation; non-nil iff Op.IsMemory().
	Mem *MemInfo
}

// NumInputs reports the number of input ports this instruction waits on.
func (in *Instruction) NumInputs() int { return in.Op.NumInputs() }

// Tag identifies a dynamic instance: the thread that produced the token and
// the wave it belongs to.
type Tag struct {
	Thread uint32
	Wave   uint32
}

// String renders the tag as "t<thread>.w<wave>".
func (t Tag) String() string { return fmt.Sprintf("t%d.w%d", t.Thread, t.Wave) }

// Token is a value in flight: a tagged datum addressed to one input port of
// one static instruction.
type Token struct {
	Tag   Tag
	Value uint64
	Dest  Target
}

// Param describes a program parameter: a named value the loader binds per
// thread (thread id, base addresses, sizes). The bound value is delivered
// to every listed target at wave 0 when the thread starts.
type Param struct {
	Name    string
	Targets []Target
}

// Program is a complete WaveScalar binary: the static dataflow graph, its
// parameters, and the designated halt instruction.
type Program struct {
	Name   string
	Insts  []Instruction
	Params []Param
	// Halt is the instruction whose firing marks thread completion.
	Halt InstID
}

// Inst returns the instruction with the given id.
func (p *Program) Inst(id InstID) *Instruction { return &p.Insts[id] }

// NumStatic returns the static instruction count, the quantity the paper's
// "WaveScalar capacity" (and the V parameter) is measured against.
func (p *Program) NumStatic() int { return len(p.Insts) }

// CountableStatic returns how many static instructions are
// Alpha-equivalent (countable toward AIPC).
func (p *Program) CountableStatic() int {
	n := 0
	for i := range p.Insts {
		if p.Insts[i].Op.Countable() {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: targets in range, ports within
// each consumer's arity, memory annotations present exactly on memory
// operations, a valid halt instruction, and parameter targets in range.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: program %q has no instructions", p.Name)
	}
	checkTarget := func(who string, t Target) error {
		if t.Inst < 0 || int(t.Inst) >= len(p.Insts) {
			return fmt.Errorf("isa: %s targets out-of-range instruction %d", who, t.Inst)
		}
		dst := &p.Insts[t.Inst]
		if int(t.Port) >= dst.NumInputs() {
			// Steer uses ports 0 and 2 only.
			if !(dst.Op == OpSteer && t.Port == 2) {
				return fmt.Errorf("isa: %s targets port %d of %s %q (arity %d)",
					who, t.Port, dst.Op, dst.Name, dst.NumInputs())
			}
		}
		if dst.Op == OpSteer && t.Port == 1 {
			return fmt.Errorf("isa: %s targets steer port 1 (predicate is port 2)", who)
		}
		return nil
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.ID != InstID(i) {
			return fmt.Errorf("isa: instruction %d has mismatched ID %d", i, in.ID)
		}
		if in.Op.IsMemory() != (in.Mem != nil) {
			return fmt.Errorf("isa: instruction %d (%s) memory annotation mismatch", i, in.Op)
		}
		if in.Op == OpSteer == (in.DestsT == nil) && in.Op == OpSteer {
			// A steer with no true-side consumers is legal (it discards),
			// so no error; this branch documents the intent.
			_ = in
		}
		who := fmt.Sprintf("instruction %d (%s)", i, in.Op)
		for _, t := range in.Dests {
			if err := checkTarget(who, t); err != nil {
				return err
			}
		}
		for _, t := range in.DestsT {
			if err := checkTarget(who+" [true side]", t); err != nil {
				return err
			}
		}
		if in.Op != OpSteer && len(in.DestsT) > 0 {
			return fmt.Errorf("isa: %s has true-side destinations but is not a steer", who)
		}
	}
	if p.Halt < 0 || int(p.Halt) >= len(p.Insts) || p.Insts[p.Halt].Op != OpHalt {
		return fmt.Errorf("isa: program %q has no valid halt instruction", p.Name)
	}
	seen := make(map[string]bool, len(p.Params))
	for _, pr := range p.Params {
		if pr.Name == "" {
			return fmt.Errorf("isa: unnamed parameter")
		}
		if seen[pr.Name] {
			return fmt.Errorf("isa: duplicate parameter %q", pr.Name)
		}
		seen[pr.Name] = true
		for _, t := range pr.Targets {
			if err := checkTarget("param "+pr.Name, t); err != nil {
				return err
			}
		}
	}
	return nil
}
