package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"wavescalar/internal/cluster"
	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// execArgs is one resolved cell for driving /v1/cluster/execute.
func execArgs(t *testing.T) (sim.Config, string, workload.Scale, []int) {
	t.Helper()
	return sim.Baseline(sim.BaselineArch()), "fft", workload.Tiny, []int{1}
}

func mustKey(t *testing.T, cfg sim.Config, app string, sc workload.Scale, counts []int) string {
	t.Helper()
	key := explore.CellKey(cfg, app, sc, counts)
	if key == "" {
		t.Fatal("empty cell key")
	}
	return key
}

// registerWorker announces a worker to the coordinator over the real
// HTTP protocol.
func registerWorker(t *testing.T, coordURL, id, addr string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"addr":%q,"version":{"tool":"wsd","version":"dev","commit":"unknown","date":"unknown","go":"test"}}`, id, addr)
	resp := post(t, coordURL+"/v1/cluster/register", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", id, resp.StatusCode)
	}
	var reg cluster.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.LeaseS <= 0 || reg.Version.Tool != "wsd" {
		t.Fatalf("register %s: response %+v", id, reg)
	}
}

// sweepResult runs one sweep to completion and returns the raw result
// JSON (designs + frontier) — the byte-identity currency of the fabric.
func sweepResult(t *testing.T, baseURL, body string, midSweep func()) json.RawMessage {
	t.Helper()
	resp := post(t, baseURL+"/v1/sweeps", body)
	accepted := decode[struct {
		ID string `json:"id"`
	}](t, resp)
	if resp.StatusCode != http.StatusAccepted || accepted.ID == "" {
		t.Fatalf("sweep not accepted: status %d id %q", resp.StatusCode, accepted.ID)
	}
	fired := midSweep == nil
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s did not finish in time", accepted.ID)
		}
		jr, err := http.Get(baseURL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		status := decode[struct {
			State    string `json:"state"`
			Error    string `json:"error"`
			Progress struct {
				Done int `json:"done"`
			} `json:"progress"`
			Result json.RawMessage `json:"result"`
		}](t, jr)
		if !fired && (status.State == "running" || status.Progress.Done > 0) {
			midSweep()
			fired = true
		}
		switch status.State {
		case "done":
			return status.Result
		case "failed", "cancelled":
			t.Fatalf("sweep %s: state %s (%s)", accepted.ID, status.State, status.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSmoke is the fabric acceptance test, compose-free: a
// coordinator and two in-process workers run a sweep, one worker is
// killed mid-sweep, and the surviving fabric must produce byte-identical
// results to a single-node sweep of the same cells.
func TestClusterSmoke(t *testing.T) {
	const sweepBody = `{"apps":["fft","lu"],"scale":"tiny","max_points":8}`

	// Ground truth: the same sweep on an ordinary single-role daemon.
	_, single := newTestServer(t)
	want := sweepResult(t, single.URL, sweepBody, nil)

	coordSrv, coord := newTestServer(t,
		WithRole(RoleCoordinator),
		WithClusterOptions(cluster.Options{
			Lease:       500 * time.Millisecond,
			Attempts:    3,
			Backoff:     5 * time.Millisecond,
			ExecTimeout: time.Minute,
		}),
	)
	_, w1 := newTestServer(t, WithRole(RoleWorker))
	_, w2 := newTestServer(t, WithRole(RoleWorker))
	registerWorker(t, coord.URL, "w1", w1.URL)
	registerWorker(t, coord.URL, "w2", w2.URL)

	resp, err := http.Get(coord.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	members := decode[cluster.WorkersResponse](t, resp)
	if members.Role != "coordinator" || len(members.Workers) != 2 {
		t.Fatalf("workers = %+v", members)
	}

	// Run the sweep through the coordinator, killing w2 the moment the
	// job is observably underway: its unfinished cells must requeue onto
	// w1 (or fall back to local simulation) without changing one byte.
	killed := false
	got := sweepResult(t, coord.URL, sweepBody, func() {
		w2.Close()
		killed = true
	})
	if !killed {
		t.Fatal("mid-sweep hook never fired")
	}
	if string(got) != string(want) {
		t.Errorf("fabric sweep differs from single-node sweep:\n%s\nvs\n%s", got, want)
	}
	if st := coordSrv.coord.Stats(); st.RemoteCells == 0 {
		t.Errorf("fabric was never used: stats %+v", st)
	}

	// The coordinator's scrape must expose the fabric: membership,
	// per-worker in-flight cells, requeues, lease expirations, and the
	// build-info gauge labeled with the role.
	mr, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mr)
	for _, series := range []string{
		"wsd_cluster_workers",
		"wsd_cluster_worker_inflight",
		"wsd_cluster_cells_dispatched_total",
		"wsd_cluster_remote_cells_total",
		"wsd_cluster_requeues_total",
		"wsd_cluster_lease_expirations_total",
		"wsd_quota_rejected_total",
		`role="coordinator"`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("coordinator /metrics missing %s", series)
		}
	}
}

// TestClusterScenarioSweep shards a scenario sweep (with a fault script
// folded into every design point) across the fabric and requires the
// result to be byte-identical to the same sweep on a single-node daemon —
// scenario cells travel the dispatch protocol like any others.
func TestClusterScenarioSweep(t *testing.T) {
	const sweepBody = `{"max_points":4,"scenario":{"scenario":"v1","scale":"tiny","threads":[1],
		"fault":{"seed":3,"link_flip_rate":0.0005},"phases":[
		{"name":"a","workload":{"gemm":{"order":"os","tm":4,"tn":4,"tk":4}}},
		{"name":"b","workload":{"name":"fft"}}]}}`

	_, single := newTestServer(t)
	want := sweepResult(t, single.URL, sweepBody, nil)

	coordSrv, coord := newTestServer(t,
		WithRole(RoleCoordinator),
		WithClusterOptions(cluster.Options{
			Lease:       500 * time.Millisecond,
			Attempts:    3,
			Backoff:     5 * time.Millisecond,
			ExecTimeout: time.Minute,
		}),
	)
	_, w1 := newTestServer(t, WithRole(RoleWorker))
	registerWorker(t, coord.URL, "w1", w1.URL)

	got := sweepResult(t, coord.URL, sweepBody, nil)
	if string(got) != string(want) {
		t.Errorf("fabric scenario sweep differs from single-node:\n%s\nvs\n%s", got, want)
	}
	if st := coordSrv.coord.Stats(); st.RemoteCells == 0 {
		t.Errorf("fabric was never used: stats %+v", st)
	}
}

// TestClusterExecuteEndpoint drives the worker half of the protocol
// directly: a valid request simulates and returns the requested key, a
// repeat is served from cache, and a drifted key is refused with 409.
func TestClusterExecuteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, WithRole(RoleWorker))
	cfg, app, sc, counts := execArgs(t)
	key := mustKey(t, cfg, app, sc, counts)

	body, err := json.Marshal(cluster.ExecRequest{Key: key, Config: cfg, App: app, Scale: sc, ThreadCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/cluster/execute", string(body))
	first := decode[cluster.ExecResponse](t, resp)
	if resp.StatusCode != http.StatusOK || first.Cell.Key != key || first.Cached {
		t.Fatalf("first execute: status %d, %+v", resp.StatusCode, first)
	}
	if first.Version.Tool != "wsd" {
		t.Errorf("response not version-stamped: %+v", first.Version)
	}

	resp = post(t, ts.URL+"/v1/cluster/execute", string(body))
	second := decode[cluster.ExecResponse](t, resp)
	if !second.Cached || second.Cell != first.Cell {
		t.Errorf("repeat execute not served from cache: %+v", second)
	}

	bad, err := json.Marshal(cluster.ExecRequest{Key: "0000", Config: cfg, App: app, Scale: sc, ThreadCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	resp = post(t, ts.URL+"/v1/cluster/execute", string(bad))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("drifted key: status %d, want 409", resp.StatusCode)
	}
}

// TestClusterEndpointsRequireCoordinator: membership endpoints on a
// non-coordinator answer 409, not 404 — the route exists, the role is
// wrong.
func TestClusterEndpointsRequireCoordinator(t *testing.T) {
	_, ts := newTestServer(t)
	for _, ep := range []string{"/v1/cluster/register", "/v1/cluster/heartbeat", "/v1/cluster/deregister"} {
		resp := post(t, ts.URL+ep, `{"id":"w1","addr":"http://x"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s on single role: status %d, want 409", ep, resp.StatusCode)
		}
	}
}

// TestTenantQuota: with a per-tenant cap of 1, a tenant's second
// concurrent sweep is rejected with 429 + Retry-After while another
// tenant still gets in.
func TestTenantQuota(t *testing.T) {
	srv, ts := newTestServer(t, WithWorkers(1), WithTenantQuota(1))
	block := make(chan struct{})
	defer close(block)
	// Park the only pool worker so admitted jobs stay queued and the
	// quota stays charged.
	if err := srv.enqueue(&job{kind: "run", block: block}); err != nil {
		t.Fatal(err)
	}

	fire := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweeps",
			strings.NewReader(`{"apps":["fft"],"scale":"tiny","max_points":2}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := fire("alice")
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: status %d", first.StatusCode)
	}
	second := fire("alice")
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota sweep: status %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q not a positive integer", ra)
	}
	other := fire("bob")
	other.Body.Close()
	if other.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant: status %d, want 202 (quota is per-tenant)", other.StatusCode)
	}
	if srv.quotas.rejections() != 1 {
		t.Errorf("rejections = %d, want 1", srv.quotas.rejections())
	}
}

// TestRetryAfterJitter: the served hint stays within ±20% of the base
// and actually varies — lockstep retries are the failure mode.
func TestRetryAfterJitter(t *testing.T) {
	srv, err := New(WithRetryAfter(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := srv.retryAfterValue()
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 8 || secs > 12 {
			t.Fatalf("Retry-After %q outside [8,12]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("no jitter: every hint was %v", seen)
	}
}
