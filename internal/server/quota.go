package server

import (
	"errors"
	"net/http"
	"sync"
)

// errQuotaExceeded means the tenant is at its concurrent-job cap — the
// per-tenant flavor of errQueueFull, mapped to the same 429 + Retry-After
// backpressure by the handlers.
var errQuotaExceeded = errors.New("server: tenant quota exceeded")

// tenantQuotas caps each tenant's queued-plus-running jobs. The fabric's
// admission story composes: the queue bound protects the process, the
// quota protects tenants from each other. A limit of 0 disables the
// whole mechanism (acquire always succeeds and accounts nothing).
type tenantQuotas struct {
	mu       sync.Mutex
	limit    int
	inflight map[string]int
	rejected uint64
}

func newTenantQuotas(limit int) *tenantQuotas {
	return &tenantQuotas{limit: limit, inflight: make(map[string]int)}
}

// acquire charges tenant one admission slot, or reports it over quota.
// On success the caller owes exactly one release (jobs carry the tenant
// so the worker pool can settle the debt wherever the job resolves).
func (q *tenantQuotas) acquire(tenant string) error {
	if q.limit <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[tenant] >= q.limit {
		q.rejected++
		return errQuotaExceeded
	}
	q.inflight[tenant]++
	return nil
}

// release returns tenant's slot. Safe on jobs that never acquired
// (tenant "" or quotas disabled).
func (q *tenantQuotas) release(tenant string) {
	if q.limit <= 0 || tenant == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.inflight[tenant]; n > 1 {
		q.inflight[tenant] = n - 1
	} else {
		delete(q.inflight, tenant)
	}
}

// rejections returns the lifetime count of over-quota rejections.
func (q *tenantQuotas) rejections() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rejected
}

// tenantOf returns the request's quota bucket: the X-Tenant header, or
// "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}
