package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// postRaw posts a JSON body and returns the status plus the exact
// response bytes — the unit the byte-identity guarantees are stated in.
func postRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestPredictFallbackByteIdentical: a /v1/predict on a daemon with no
// model must be indistinguishable from /v1/runs — same status, same
// bytes. Two fresh servers make both sides cache-cold, so the comparison
// covers the full cold-run path, not just the cache fast path.
func TestPredictFallbackByteIdentical(t *testing.T) {
	body := `{"workload":"fft","scale":"tiny","threads":1}`

	_, tsRun := newTestServer(t, WithWorkers(2))
	runStatus, runBytes := postRaw(t, tsRun.URL+"/v1/runs", body)

	_, tsPred := newTestServer(t, WithWorkers(2))
	predStatus, predBytes := postRaw(t, tsPred.URL+"/v1/predict", body)

	if runStatus != http.StatusOK || predStatus != http.StatusOK {
		t.Fatalf("status: runs %d, predict %d", runStatus, predStatus)
	}
	if !bytes.Equal(runBytes, predBytes) {
		t.Errorf("fallback diverges from /v1/runs:\n%s\nvs\n%s", predBytes, runBytes)
	}
}

// TestPredictServedFromModel is the serving-path e2e: populate a journal
// with real runs, warm-restart with -surrogate-train, and check that a
// confident prediction is answered without simulation, that a later real
// run of the same cell feeds the observed-error metrics, and that a
// fault-injected request falls back.
func TestPredictServedFromModel(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wsd.jsonl")

	// Phase 1: measure six cells across the (clusters, virt) plane.
	srv1, err := New(WithWorkers(4), WithJournal(journal, false))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	for _, cell := range []string{
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":1,"virt":16,"match":16}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":1,"virt":64,"match":64}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":2,"virt":16,"match":16}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":2,"virt":64,"match":64}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":4,"virt":16,"match":16}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":4,"virt":64,"match":64}}`,
	} {
		if status, b := postRaw(t, ts1.URL+"/v1/runs", cell); status != http.StatusOK {
			t.Fatalf("seeding run: status %d: %s", status, b)
		}
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: warm restart, train at startup, serve with a gate generous
	// enough that the model always answers.
	srv2, err := New(WithWorkers(4), WithJournal(journal, true),
		WithSurrogateTrain(), WithSurrogateThreshold(1000))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()
	if srv2.Resumed() == 0 {
		t.Fatal("warm restart resumed no cells")
	}

	// An uncached cell: the model must answer it without the simulator.
	unseen := `{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":8,"virt":32,"match":32}}`
	resp := post(t, ts2.URL+"/v1/predict", unseen)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	pred := decode[struct {
		Key    string `json:"key"`
		Source string `json:"source"`
		Model  struct {
			Kind      string  `json:"kind"`
			Samples   int     `json:"samples"`
			Threshold float64 `json:"threshold"`
		} `json:"model"`
		Result struct {
			App      string  `json:"app"`
			Arch     string  `json:"arch"`
			AIPC     float64 `json:"aipc"`
			RelSigma float64 `json:"rel_sigma"`
		} `json:"result"`
	}](t, resp)
	if pred.Source != "surrogate" {
		t.Fatalf("predict served source %q, want surrogate", pred.Source)
	}
	if pred.Model.Samples < 6 || pred.Model.Threshold != 1000 {
		t.Errorf("model %+v, want >=6 samples and the configured threshold", pred.Model)
	}
	if pred.Result.App != "fft" || pred.Result.AIPC <= 0 {
		t.Errorf("result %+v", pred.Result)
	}

	// Simulating the predicted cell for real closes the validation loop.
	if status, b := postRaw(t, ts2.URL+"/v1/runs", unseen); status != http.StatusOK {
		t.Fatalf("validation run: status %d: %s", status, b)
	}

	// A fault-injected request is never answered from the model: the
	// response is a plain run response (no "source"), and the fallback
	// reason is recorded.
	faulty := `{"workload":"fft","scale":"tiny","threads":1,"fault":{"seed":7,"link_flip_rate":0.001}}`
	fresp := post(t, ts2.URL+"/v1/predict", faulty)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("faulty predict: status %d", fresp.StatusCode)
	}
	fb := decode[map[string]any](t, fresp)
	if _, hasSource := fb["source"]; hasSource {
		t.Error("fault-injected predict was answered from the model")
	}
	if _, hasCached := fb["cached"]; !hasCached {
		t.Errorf("fault-injected predict is not a run response: %v", fb)
	}

	metricsResp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mb)
	for _, want := range []string{
		"wsd_surrogate_predictions_total 1",
		"wsd_surrogate_validations_total 1",
		`wsd_surrogate_fallbacks_total{reason="fault"} 1`,
		"wsd_surrogate_confidence_threshold 1000",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "wsd_surrogate_observed_error_sum") {
		t.Error("metrics missing wsd_surrogate_observed_error_sum")
	}
}

// TestPredictLowConfidenceByteIdentical: with an impossibly strict gate
// the model must decline, and the fallback must be byte-identical to what
// a model-less daemon's /v1/runs produces for the same cold cell.
func TestPredictLowConfidenceByteIdentical(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wsd.jsonl")
	srv1, err := New(WithWorkers(4), WithJournal(journal, false))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	for _, cell := range []string{
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":1,"virt":16,"match":16}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":2,"virt":64,"match":64}}`,
		`{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":4,"virt":32,"match":32}}`,
	} {
		if status, b := postRaw(t, ts1.URL+"/v1/runs", cell); status != http.StatusOK {
			t.Fatalf("seeding run: status %d: %s", status, b)
		}
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srvStrict, err := New(WithWorkers(2), WithJournal(journal, true),
		WithSurrogateTrain(), WithSurrogateThreshold(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	tsStrict := httptest.NewServer(srvStrict)
	defer tsStrict.Close()
	defer srvStrict.Close()

	// Cache-cold on both servers.
	unseen := `{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":2,"virt":128,"match":128}}`
	predStatus, predBytes := postRaw(t, tsStrict.URL+"/v1/predict", unseen)

	_, tsPlain := newTestServer(t, WithWorkers(2))
	runStatus, runBytes := postRaw(t, tsPlain.URL+"/v1/runs", unseen)

	if predStatus != http.StatusOK || runStatus != http.StatusOK {
		t.Fatalf("status: predict %d, runs %d", predStatus, runStatus)
	}
	if !bytes.Equal(predBytes, runBytes) {
		t.Errorf("low-confidence fallback diverges from /v1/runs:\n%s\nvs\n%s", predBytes, runBytes)
	}

	metricsResp, err := http.Get(tsStrict.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), `wsd_surrogate_fallbacks_total{reason="low_confidence"} 1`) {
		t.Error("metrics missing the low_confidence fallback count")
	}
}

// TestPredictRejectsScenario: scenarios expand to many cells; /v1/predict
// refuses them instead of guessing.
func TestPredictRejectsScenario(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/predict", `{"scenario":{"scenario":"v1","name":"x","workload":{"name":"fft"},"phases":[{"name":"p"}]}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestScenarioStoreWarmRestart: scenarios posted before a restart must be
// servable by digest after it, and re-posting must still dedup.
func TestScenarioStoreWarmRestart(t *testing.T) {
	store := filepath.Join(t.TempDir(), "wsd.scenarios")

	srv1, err := New(WithScenarioStore(store))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	first := postScenario(t, ts1.URL, scenarioDoc)
	if !first.Created {
		t.Fatalf("first post: %+v", first)
	}
	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(WithScenarioStore(store))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Close()

	resp, err := http.Get(ts2.URL + "/v1/scenarios/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after restart: status %d, want 200", resp.StatusCode)
	}
	again := postScenario(t, ts2.URL, scenarioDoc)
	if again.Created || again.Digest != first.Digest {
		t.Errorf("re-post after restart: %+v, want created=false digest %s", again, first.Digest)
	}
}
