package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metrics is a minimal Prometheus-exposition registry. The repo takes no
// dependencies, so the daemon hand-rolls the text format (which is the
// stable, officially documented wire format): counters for requests,
// simulations, jobs and dedup; histograms for request latency; gauges are
// sampled live at scrape time by the /metrics handler.
type metrics struct {
	mu sync.Mutex
	// requests[path][method|code] — request counts by route and outcome.
	requests map[string]map[string]uint64
	// latency[path] — request duration histograms by route.
	latency map[string]*histogram

	simsCompleted, simsFailed, simsCancelled uint64
	jobsCompleted, jobsFailed, jobsCancelled uint64
	dedupShared, rejectedFull                uint64
	journalErrors                            uint64
	panics                                   uint64
	faultSims                                uint64
	journalMerged                            uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[string]uint64),
		latency:  make(map[string]*histogram),
	}
}

// observeRequest records one finished HTTP request.
func (m *metrics) observeRequest(path, method string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byOutcome := m.requests[path]
	if byOutcome == nil {
		byOutcome = make(map[string]uint64)
		m.requests[path] = byOutcome
	}
	byOutcome[fmt.Sprintf("%s|%d", method, code)]++
	h := m.latency[path]
	if h == nil {
		h = newHistogram()
		m.latency[path] = h
	}
	h.observe(seconds)
}

func (m *metrics) add(counter *uint64, n uint64) {
	m.mu.Lock()
	*counter += n
	m.mu.Unlock()
}

// latencyBuckets are the histogram upper bounds in seconds: simulations
// range from sub-millisecond cache hits to multi-second medium-scale runs.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

type histogram struct {
	counts []uint64 // one per bucket, non-cumulative
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets))}
}

// observe records one value. Callers hold metrics.mu.
func (h *histogram) observe(v float64) {
	for i, le := range latencyBuckets {
		if v <= le {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.total++
}

// gauge is one live-sampled value for the exposition.
type gauge struct {
	name, help string
	value      float64
}

// write renders the registry plus the sampled gauges in Prometheus text
// exposition format, deterministically ordered.
func (m *metrics) write(w io.Writer, gauges []gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprint(w, "# HELP wsd_http_requests_total HTTP requests by route, method and status code.\n")
	fmt.Fprint(w, "# TYPE wsd_http_requests_total counter\n")
	for _, path := range sortedKeys(m.requests) {
		byOutcome := m.requests[path]
		outcomes := make([]string, 0, len(byOutcome))
		for k := range byOutcome {
			outcomes = append(outcomes, k)
		}
		sort.Strings(outcomes)
		for _, k := range outcomes {
			method, code, _ := strings.Cut(k, "|")
			fmt.Fprintf(w, "wsd_http_requests_total{path=%q,method=%q,code=%q} %d\n",
				path, method, code, byOutcome[k])
		}
	}

	fmt.Fprint(w, "# HELP wsd_http_request_duration_seconds HTTP request latency by route.\n")
	fmt.Fprint(w, "# TYPE wsd_http_request_duration_seconds histogram\n")
	for _, path := range sortedKeys(m.latency) {
		h := m.latency[path]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "wsd_http_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n",
				path, le, cum)
		}
		fmt.Fprintf(w, "wsd_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", path, h.total)
		fmt.Fprintf(w, "wsd_http_request_duration_seconds_sum{path=%q} %g\n", path, h.sum)
		fmt.Fprintf(w, "wsd_http_request_duration_seconds_count{path=%q} %d\n", path, h.total)
	}

	fmt.Fprint(w, "# HELP wsd_sims_total Simulations executed by the worker pool, by outcome.\n")
	fmt.Fprint(w, "# TYPE wsd_sims_total counter\n")
	fmt.Fprintf(w, "wsd_sims_total{outcome=\"completed\"} %d\n", m.simsCompleted)
	fmt.Fprintf(w, "wsd_sims_total{outcome=\"failed\"} %d\n", m.simsFailed)
	fmt.Fprintf(w, "wsd_sims_total{outcome=\"cancelled\"} %d\n", m.simsCancelled)

	fmt.Fprint(w, "# HELP wsd_jobs_total Async sweep jobs finished, by outcome.\n")
	fmt.Fprint(w, "# TYPE wsd_jobs_total counter\n")
	fmt.Fprintf(w, "wsd_jobs_total{outcome=\"completed\"} %d\n", m.jobsCompleted)
	fmt.Fprintf(w, "wsd_jobs_total{outcome=\"failed\"} %d\n", m.jobsFailed)
	fmt.Fprintf(w, "wsd_jobs_total{outcome=\"cancelled\"} %d\n", m.jobsCancelled)

	fmt.Fprint(w, "# HELP wsd_singleflight_shared_total Run requests that piggybacked on an identical in-flight simulation.\n")
	fmt.Fprint(w, "# TYPE wsd_singleflight_shared_total counter\n")
	fmt.Fprintf(w, "wsd_singleflight_shared_total %d\n", m.dedupShared)

	fmt.Fprint(w, "# HELP wsd_admission_rejected_total Requests rejected with 429 because the queue was full.\n")
	fmt.Fprint(w, "# TYPE wsd_admission_rejected_total counter\n")
	fmt.Fprintf(w, "wsd_admission_rejected_total %d\n", m.rejectedFull)

	fmt.Fprint(w, "# HELP wsd_journal_errors_total Journal appends that failed (results still served from memory).\n")
	fmt.Fprint(w, "# TYPE wsd_journal_errors_total counter\n")
	fmt.Fprintf(w, "wsd_journal_errors_total %d\n", m.journalErrors)

	fmt.Fprint(w, "# HELP wsd_panics_total Handler panics recovered by the middleware (each served a 500).\n")
	fmt.Fprint(w, "# TYPE wsd_panics_total counter\n")
	fmt.Fprintf(w, "wsd_panics_total %d\n", m.panics)

	fmt.Fprint(w, "# HELP wsd_fault_sims_total Simulations executed with a fault-injection script attached.\n")
	fmt.Fprint(w, "# TYPE wsd_fault_sims_total counter\n")
	fmt.Fprintf(w, "wsd_fault_sims_total %d\n", m.faultSims)

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
