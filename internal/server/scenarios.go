// Scenario endpoints: POST /v1/scenarios stores validated scenario
// documents content-addressed by digest, and runs/sweeps accept either a
// stored digest or an inline document wherever a workload could go.
//
// A scenario never invents a new cache-key schema. Each phase lowers to
// an ordinary (config, workload, scale, threads) cell whose key is
// explore.CellKey — the same key a direct Go invocation or a plain
// /v1/runs request would compute — so the cache, journal, singleflight
// and cluster fabric serve scenario traffic unchanged, and a scenario
// re-run is a pure cache hit.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"wavescalar/internal/area"
	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/fault"
	"wavescalar/internal/scenario"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// WithScenarioStore persists the scenario store to a JSONL file
// alongside the journal: every newly created scenario is appended as
// one canonical JSON line, and existing lines are reloaded at startup —
// so a warm restart serves GET /v1/scenarios/{digest} (and runs by
// digest) for everything clients ever stored. Storage stays
// content-addressed: reloading re-derives each digest from the
// document, and duplicate lines (from overlapping daemons sharing a
// file) collapse into one entry.
func WithScenarioStore(path string) Option {
	return func(s *Server) error {
		if path == "" {
			return fmt.Errorf("%w: empty scenario-store path", design.ErrBadOptions)
		}
		s.scnPath = path
		return nil
	}
}

// openScenarioStore reloads and opens the scenario store configured by
// WithScenarioStore (a no-op without it). Reload is salvage, not
// verification: a line that does not parse — a record torn by a crash
// mid-append, a truncated tail, stray corruption from a shared file —
// is skipped with a warning and every intact record is kept. The store
// is content-addressed, so dropping a broken line can never serve a
// wrong document (clients re-POST and get the same digest back), while
// failing startup over one bad byte would take the whole daemon down
// with it. Duplicate lines collapse onto one digest as always.
func (s *Server) openScenarioStore() error {
	if s.scnPath == "" {
		return nil
	}
	f, err := os.Open(s.scnPath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: open scenario store: %w", err)
	}
	if err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		line, skipped := 0, 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			doc, perr := scenario.Parse(sc.Bytes())
			if perr != nil {
				skipped++
				log.Printf("server: scenario store %s line %d: skipping unreadable record: %v", s.scnPath, line, perr)
				continue
			}
			s.scenarios[doc.Digest()] = doc
		}
		serr := sc.Err()
		f.Close()
		if serr != nil {
			// An over-long or unreadable tail: keep everything parsed so
			// far rather than failing startup over it.
			log.Printf("server: scenario store %s: stopping reload after line %d: %v", s.scnPath, line, serr)
		}
		if skipped > 0 {
			log.Printf("server: scenario store %s: reloaded %d scenarios, skipped %d unreadable lines", s.scnPath, len(s.scenarios), skipped)
		}
	}
	s.scnFile, err = os.OpenFile(s.scnPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: open scenario store for append: %w", err)
	}
	return nil
}

// appendScenario persists one newly created scenario as a canonical
// JSON line. Callers hold scnMu (the same lock ordering as the map
// insert, so concurrent creates serialize their lines). Failures are
// durability problems, not serving problems: the scenario stays served
// from memory and the error surfaces as wsd_journal_errors_total.
func (s *Server) appendScenario(doc *scenario.Scenario) {
	if s.scnFile == nil {
		return
	}
	b, err := json.Marshal(doc)
	if err == nil {
		_, err = s.scnFile.Write(append(b, '\n'))
	}
	if err != nil {
		log.Printf("server: scenario store append: %v", err)
		s.metrics.add(&s.metrics.journalErrors, 1)
	}
}

// scenarioResponse is the wire form of a stored scenario.
type scenarioResponse struct {
	Digest  string `json:"digest"`
	Created bool   `json:"created"`
	Name    string `json:"name,omitempty"`
	Phases  int    `json:"phases"`
}

// handleScenarioPost validates and stores one scenario document. Storage
// is content-addressed: re-posting an identical document (any formatting)
// answers created=false with the same digest — the dedup signal clients
// and CI rely on.
func (s *Server) handleScenarioPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	phases, err := sc.ResolvePhases()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	digest := sc.Digest()
	s.scnMu.Lock()
	_, exists := s.scenarios[digest]
	if !exists {
		s.scenarios[digest] = sc
		s.appendScenario(sc)
	}
	s.scnMu.Unlock()
	status := http.StatusOK
	if !exists {
		status = http.StatusCreated
	}
	writeJSON(w, status, scenarioResponse{
		Digest: digest, Created: !exists, Name: sc.Name, Phases: len(phases),
	})
}

func (s *Server) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	s.scnMu.Lock()
	sc, ok := s.scenarios[digest]
	s.scnMu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown scenario %q", digest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"digest": digest, "scenario": sc})
}

// resolveScenario turns the "scenario" field of a run or sweep request —
// a digest string referencing a stored document, or an inline document —
// into a parsed scenario. The returned status is meaningful only on
// error.
func (s *Server) resolveScenario(raw json.RawMessage) (*scenario.Scenario, int, error) {
	var digest string
	if err := json.Unmarshal(raw, &digest); err == nil {
		s.scnMu.Lock()
		sc, ok := s.scenarios[digest]
		s.scnMu.Unlock()
		if !ok {
			return nil, http.StatusNotFound, &scenarioRefError{digest}
		}
		return sc, 0, nil
	}
	sc, err := scenario.Parse(raw)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return sc, 0, nil
}

type scenarioRefError struct{ digest string }

func (e *scenarioRefError) Error() string {
	return "unknown scenario " + e.digest + " (POST the document to /v1/scenarios first, or inline it)"
}

// scenarioPhaseSpec is one phase lowered to a runnable cell: the same
// (config, workload, scale, threads) tuple a plain run carries, so key
// computation and execution are shared verbatim.
type scenarioPhaseSpec struct {
	name      string
	cfg       sim.Config
	w         workload.Workload
	scale     workload.Scale
	scaleName string
	threads   []int
	key       string
}

// scenarioSpec is the resolved work of one scenario run: phases execute
// in order on a pool worker, each through the explorer's cache/journal
// write-through. Only the worker writes results/cached/err, and only
// after done closes do waiters read them — no lock needed.
type scenarioSpec struct {
	phases  []scenarioPhaseSpec
	done    chan struct{}
	results []explore.Cell
	cached  []bool
	err     error
}

// lowerScenario resolves the scenario's phases against a base
// configuration: phase fault scripts are validated against the machine
// shape and folded into per-phase configs, and every phase gets its cell
// key — the fault digest inside the config keeps faulty phases from
// colliding with clean ones.
func lowerScenario(sc *scenario.Scenario, base sim.Config) ([]scenarioPhaseSpec, error) {
	phases, err := sc.ResolvePhases()
	if err != nil {
		return nil, err
	}
	specs := make([]scenarioPhaseSpec, len(phases))
	for i, ph := range phases {
		cfg := base
		if !ph.Fault.Empty() {
			if err := ph.Fault.Validate(sim.FaultShape(cfg)); err != nil {
				return nil, err
			}
			cfg.Fault = ph.Fault
		}
		specs[i] = scenarioPhaseSpec{
			name: ph.Name, cfg: cfg, w: ph.Workload,
			scale: ph.Scale, scaleName: ph.ScaleName, threads: ph.Threads,
			key: explore.CellKey(cfg, ph.Workload.Name, ph.Scale, ph.Threads),
		}
	}
	return specs, nil
}

// scenarioPhaseResult is one phase's outcome in a scenario run response.
type scenarioPhaseResult struct {
	Phase  string    `json:"phase"`
	Key    string    `json:"key"`
	Cached bool      `json:"cached"`
	Result runResult `json:"result"`
}

type scenarioRunResponse struct {
	Scenario string                `json:"scenario"`
	Cached   bool                  `json:"cached"` // every phase served from cache
	Phases   []scenarioPhaseResult `json:"phases"`
}

// handleScenarioRun serves POST /v1/runs bodies that reference a
// scenario. The scenario carries workload, scale, threads and fault, so
// the plain per-run fields must be absent; only the machine config and
// timeout still come from the request.
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request, req *runRequest) {
	if req.Workload != "" || req.Scale != "" || req.Threads != 0 || req.Fault != nil {
		writeErr(w, http.StatusBadRequest,
			"scenario is mutually exclusive with workload, scale, threads and fault (the scenario carries them)")
		return
	}
	sc, status, err := s.resolveScenario(req.Scenario)
	if err != nil {
		writeErr(w, status, "%v", err)
		return
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	specs, err := lowerScenario(sc, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	digest := sc.Digest()
	areaMM2 := area.Total(cfg.Arch)

	respond := func(cells []explore.Cell, cached []bool) {
		resp := scenarioRunResponse{Scenario: digest, Cached: true}
		for i, spec := range specs {
			if !cached[i] {
				resp.Cached = false
			}
			resp.Phases = append(resp.Phases, scenarioPhaseResult{
				Phase: spec.name, Key: spec.key, Cached: cached[i],
				Result: cellResult(cells[i], areaMM2, spec.scaleName),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	}

	// Fast path: every phase already in the cache (memory or replayed
	// journal) — a scenario re-run costs zero simulation.
	cells := make([]explore.Cell, len(specs))
	cached := make([]bool, len(specs))
	hit := 0
	for i, spec := range specs {
		if cell, ok := s.cache.Cell(spec.key); ok {
			cells[i], cached[i] = cell, true
			hit++
		}
	}
	if hit == len(specs) {
		respond(cells, cached)
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	jb := &job{
		kind: "scenario",
		scn:  &scenarioSpec{phases: specs, done: make(chan struct{})},
	}
	if err := s.admit(r, jb); err != nil {
		s.writeAdmissionErr(w, err)
		return
	}
	timeout := s.requestTimeout
	if req.TimeoutS > 0 {
		timeout = time.Duration(req.TimeoutS * float64(time.Second))
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-jb.scn.done:
		if jb.scn.err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", jb.scn.err)
			return
		}
		respond(jb.scn.results, jb.scn.cached)
	case <-timer.C:
		// Phases keep running and land in the cache; a retry after they
		// complete is a pure cache hit.
		writeErr(w, http.StatusGatewayTimeout, "deadline exceeded waiting for scenario; retry later for the cached result")
	case <-r.Context().Done():
		writeErr(w, http.StatusGatewayTimeout, "caller gave up; the scenario continues and will be cached")
	}
}

// scenarioSweep is the sweep a scenario defines: the distinct phase
// workloads as the app list, plus the (required uniform) scale, thread
// counts and fault script.
type scenarioSweep struct {
	apps    []workload.Workload
	scale   workload.Scale
	threads []int
	script  *fault.Script
}

// scenarioSweepPlan extracts the sweep axes from a scenario. Per-phase
// scale/thread/fault overrides would make each phase a different sweep —
// reject them here rather than silently evaluating only one.
func scenarioSweepPlan(sc *scenario.Scenario) (scenarioSweep, error) {
	phases, err := sc.ResolvePhases()
	if err != nil {
		return scenarioSweep{}, err
	}
	first := phases[0]
	for _, ph := range phases[1:] {
		if ph.Scale != first.Scale || !equalInts(ph.Threads, first.Threads) || ph.Fault.Digest() != first.Fault.Digest() {
			return scenarioSweep{}, errScenarioSweep
		}
	}
	plan := scenarioSweep{scale: first.Scale, threads: first.Threads, script: first.Fault}
	seen := map[string]bool{}
	for _, ph := range phases {
		if !seen[ph.Workload.Name] {
			seen[ph.Workload.Name] = true
			plan.apps = append(plan.apps, ph.Workload)
		}
	}
	return plan, nil
}

var errScenarioSweep = &scenarioSweepError{}

type scenarioSweepError struct{}

func (*scenarioSweepError) Error() string {
	return "scenario sweeps need a uniform scale, threads and fault across phases (per-phase overrides describe different sweeps)"
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// configure returns the sweep's ConfigureFunc: nil (baseline) without a
// fault script, otherwise a wrapper folding the script into every design
// point's configuration. The script lands in each cell's Config, so its
// digest is part of every CellKey — faulty sweep results never collide
// with clean ones in the cache, the journal, or the fabric. Scripts are
// not shape-checked here (design points differ in shape); the simulator
// validates at processor build and surfaces a per-cell error.
func (p scenarioSweep) configure() design.ConfigureFunc {
	if p.script.Empty() {
		return nil
	}
	script := p.script
	return func(pt design.Point) sim.Config {
		cfg := design.BaselineConfigure(pt)
		cfg.Fault = script
		return cfg
	}
}
