package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"wavescalar/internal/area"
	"wavescalar/internal/cli"
	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/fault"
	"wavescalar/internal/sim"
	"wavescalar/internal/version"
	"wavescalar/internal/workload"
)

// routes builds the instrumented mux. Every route is wrapped so request
// counts and latency histograms are labeled by pattern, not raw URL (no
// cardinality explosion from job ids).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/workloads", s.handleWorkloads)
	handle("GET /v1/designs", s.handleDesigns)
	handle("POST /v1/runs", s.handleRun)
	handle("POST /v1/sweeps", s.handleSweep)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return mux
}

// statusWriter captures the response code for metrics and whether any
// bytes have been written — the panic middleware can only substitute a
// 500 while the response is still untouched.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request metrics and panic recovery. A
// panicking handler must not take the daemon down with it: the panic is
// logged with a request id and a stack trace, counted in
// wsd_panics_total, and — if the handler had not started the response —
// answered with a 500 carrying the same request id so operators can
// correlate the client-visible error with the server log.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				id := s.reqSeq.Add(1)
				s.metrics.add(&s.metrics.panics, 1)
				log.Printf("server: panic serving %s (request %d): %v\n%s", pattern, id, rec, debug.Stack())
				if !sw.wrote {
					writeErr(sw, http.StatusInternalServerError, "internal error (request %d)", id)
				}
			}
			s.metrics.observeRequest(pattern, r.Method, sw.code, time.Since(start).Seconds())
		}()
		h(sw, r)
	})
}

// writeJSON responds with one JSON object in the shared CLI convention.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	cli.WriteJSON(w, v)
}

// writeErr responds with the API's uniform error shape.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// archSpec is the request-side architecture description: any subset of
// the seven Table 3 parameters plus the k-loop bound; omitted fields keep
// their Table 1 baseline values.
type archSpec struct {
	Clusters int `json:"clusters"`
	Domains  int `json:"domains"`
	PEs      int `json:"pes"`
	Virt     int `json:"virt"`
	Match    int `json:"match"`
	L1KB     int `json:"l1_kb"`
	L2MB     int `json:"l2_mb"`
	K        int `json:"k"`
}

// resolve merges the spec over the baseline and validates the result.
func (a *archSpec) resolve() (sim.Config, error) {
	arch := sim.BaselineArch()
	if a != nil {
		set := func(dst *int, v int) {
			if v != 0 {
				*dst = v
			}
		}
		set(&arch.Clusters, a.Clusters)
		set(&arch.Domains, a.Domains)
		set(&arch.PEs, a.PEs)
		set(&arch.Virt, a.Virt)
		set(&arch.Match, a.Match)
		set(&arch.L1KB, a.L1KB)
		set(&arch.L2MB, a.L2MB)
	}
	cfg := sim.Baseline(arch)
	if a != nil && a.K != 0 {
		cfg.K = a.K
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// runRequest is the body of POST /v1/runs.
type runRequest struct {
	Workload string        `json:"workload"`
	Scale    string        `json:"scale,omitempty"`     // default "tiny"
	Threads  int           `json:"threads,omitempty"`   // default 1
	Config   *archSpec     `json:"config,omitempty"`    // default Table 1 baseline
	Fault    *fault.Script `json:"fault,omitempty"`     // optional fault-injection script
	TimeoutS float64       `json:"timeout_s,omitempty"` // wait bound; default server-wide
}

// runResult is the deterministic payload of one measurement — derived
// entirely from the cached cell, so cold runs, singleflight followers and
// warm-restart cache hits serve byte-identical results.
type runResult struct {
	App       string  `json:"app"`
	Arch      string  `json:"arch"`
	AreaMM2   float64 `json:"area_mm2"`
	Scale     string  `json:"scale"`
	Threads   int     `json:"threads"`
	AIPC      float64 `json:"aipc"`
	Cycles    uint64  `json:"cycles"`
	SimCycles uint64  `json:"sim_cycles"`
	Err       string  `json:"err,omitempty"`
}

type runResponse struct {
	Key    string    `json:"key"`
	Cached bool      `json:"cached"`
	Result runResult `json:"result"`
}

func cellResult(cell explore.Cell, areaMM2 float64, scale string) runResult {
	return runResult{
		App: cell.App, Arch: cell.Arch, AreaMM2: areaMM2, Scale: scale,
		Threads: cell.Threads, AIPC: cell.AIPC,
		Cycles: cell.Cycles, SimCycles: cell.SimCycles, Err: cell.Err,
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Workload == "" {
		writeErr(w, http.StatusBadRequest, "workload is required")
		return
	}
	wl, ok := workload.ByName(req.Workload)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown workload %q", req.Workload)
		return
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "tiny"
	}
	sc, err := cli.ParseScale(scaleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Threads == 0 {
		req.Threads = 1
	}
	if req.Threads < 0 {
		writeErr(w, http.StatusBadRequest, "threads %d must be positive", req.Threads)
		return
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	if !req.Fault.Empty() {
		if err := req.Fault.Validate(sim.FaultShape(cfg)); err != nil {
			writeErr(w, http.StatusBadRequest, "bad fault script: %v", err)
			return
		}
		cfg.Fault = req.Fault
	}
	areaMM2 := area.Total(cfg.Arch)
	key := explore.CellKey(cfg, wl.Name, sc, []int{req.Threads})

	// Fast path: the cache (memory or replayed journal) already has it.
	if cell, ok := s.cache.Cell(key); ok {
		writeJSON(w, http.StatusOK, runResponse{Key: key, Cached: true, Result: cellResult(cell, areaMM2, scaleName)})
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	call, leader := s.flight.join(key)
	if leader {
		jb := &job{
			kind: "run", key: key, call: call,
			run: &runSpec{cfg: cfg, w: wl, scale: sc, threads: req.Threads},
		}
		if err := s.enqueue(jb); err != nil {
			s.flight.abandon(key, call, err)
			if errors.Is(err, errQueueFull) {
				s.metrics.add(&s.metrics.rejectedFull, 1)
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, "admission queue full; retry")
			} else {
				writeErr(w, http.StatusServiceUnavailable, "shutting down")
			}
			return
		}
	} else {
		s.metrics.add(&s.metrics.dedupShared, 1)
	}

	timeout := s.requestTimeout
	if req.TimeoutS > 0 {
		timeout = time.Duration(req.TimeoutS * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case <-call.done:
		if call.err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", call.err)
			return
		}
		writeJSON(w, http.StatusOK, runResponse{Key: key, Cached: false, Result: cellResult(call.cell, areaMM2, scaleName)})
	case <-ctx.Done():
		// The simulation keeps running and will be cached; a retry after
		// it completes is a cache hit.
		writeErr(w, http.StatusGatewayTimeout, "deadline exceeded waiting for simulation; retry later for the cached result")
	}
}

// sweepRequest is the body of POST /v1/sweeps: a suite (or explicit app
// list) evaluated over the viable design space, optionally subsampled.
type sweepRequest struct {
	Suite        string   `json:"suite,omitempty"`
	Apps         []string `json:"apps,omitempty"`
	Scale        string   `json:"scale,omitempty"`         // default "tiny"
	ThreadCounts []int    `json:"thread_counts,omitempty"` // default {1}; splash2 defaults to {1,4,16,64}
	MaxPoints    int      `json:"max_points,omitempty"`    // 0 = every viable design
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	var apps []workload.Workload
	switch {
	case len(req.Apps) > 0:
		for _, name := range req.Apps {
			wl, ok := workload.ByName(name)
			if !ok {
				writeErr(w, http.StatusNotFound, "unknown workload %q", name)
				return
			}
			apps = append(apps, wl)
		}
	case req.Suite != "":
		suite, ok := suiteByName(req.Suite)
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown suite %q (spec2000, mediabench, splash2)", req.Suite)
			return
		}
		apps = workload.BySuite(suite)
	default:
		writeErr(w, http.StatusBadRequest, "suite or apps is required")
		return
	}

	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "tiny"
	}
	sc, err := cli.ParseScale(scaleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	counts := req.ThreadCounts
	if len(counts) == 0 {
		counts = []int{1}
		if req.Suite == "splash2" {
			counts = []int{1, 4, 16, 64}
		}
	}
	for _, n := range counts {
		if n < 1 {
			writeErr(w, http.StatusBadRequest, "thread count %d must be positive", n)
			return
		}
	}
	points := design.Viable()
	if req.MaxPoints > 0 && req.MaxPoints < len(points) {
		points = subsample(points, req.MaxPoints)
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	jb := &job{
		kind:  "sweep",
		sweep: &sweepSpec{points: points, apps: apps, scale: sc, threadCounts: counts},
		ctx:   ctx, cancel: cancel,
		state: stateQueued,
	}
	jb.progress.Total = len(points) * len(apps)
	id := s.jobs.add(jb)
	if err := s.enqueue(jb); err != nil {
		s.jobs.remove(id)
		cancel()
		if errors.Is(err, errQueueFull) {
			s.metrics.add(&s.metrics.rejectedFull, 1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "admission queue full; retry")
		} else {
			writeErr(w, http.StatusServiceUnavailable, "shutting down")
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "status": stateQueued,
		"cells": len(points) * len(apps),
		"poll":  "/v1/jobs/" + id,
	})
}

// subsample picks n points evenly across the ordered design list, the
// same policy as wspareto -max.
func subsample(pts []design.Point, n int) []design.Point {
	out := make([]design.Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

func suiteByName(name string) (workload.Suite, bool) {
	for _, su := range []workload.Suite{workload.Spec, workload.Media, workload.Splash} {
		if su.String() == name {
			return su, true
		}
	}
	return 0, false
}

// jobProgress is the wire form of a sweep's progress.
type jobProgress struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	CacheHits int     `json:"cache_hits"`
	Simulated int     `json:"simulated"`
	Failed    int     `json:"failed"`
	SimCycles uint64  `json:"sim_cycles"`
	ElapsedS  float64 `json:"elapsed_s"`
}

// sweepRow is one design's outcome in a finished sweep job.
type sweepRow struct {
	Arch     string             `json:"arch"`
	AreaMM2  float64            `json:"area_mm2"`
	MeanAIPC float64            `json:"mean_aipc"`
	AIPC     map[string]float64 `json:"aipc,omitempty"`
	Threads  map[string]int     `json:"threads,omitempty"`
	Err      string             `json:"err,omitempty"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	state, p, results, jerr := jb.snapshot()
	resp := map[string]any{
		"id":    id,
		"state": state,
		"progress": jobProgress{
			Done: p.Done, Total: p.Total, CacheHits: p.CacheHits,
			Simulated: p.Simulated, Failed: p.Failed, SimCycles: p.SimCycles,
			ElapsedS: p.Elapsed.Seconds(),
		},
	}
	if jerr != nil {
		resp["error"] = jerr.Error()
	}
	if state == stateDone {
		rows := make([]sweepRow, len(results))
		for i, res := range results {
			rows[i] = sweepRow{
				Arch: res.Arch.String(), AreaMM2: res.Area, MeanAIPC: res.Mean,
				AIPC: res.AIPC, Threads: res.Threads,
			}
			if res.Err != nil {
				rows[i].Err = res.Err.Error()
			}
		}
		frontier := design.Frontier(results)
		front := make([]map[string]any, len(frontier))
		for i, f := range frontier {
			front[i] = map[string]any{"arch": f.Arch.String(), "area_mm2": f.Area, "aipc": f.AIPC}
		}
		resp["result"] = map[string]any{"designs": rows, "frontier": front}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	jb.cancel()
	state, _, _, _ := jb.snapshot()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": state, "status": "cancel requested"})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	all := workload.All()
	rows := make([]map[string]string, len(all))
	for i, wl := range all {
		rows[i] = map[string]string{"name": wl.Name, "suite": wl.Suite.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "workloads": rows})
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	points := design.Viable()
	if maxStr := r.URL.Query().Get("max"); maxStr != "" {
		var n int
		if _, err := fmt.Sscanf(maxStr, "%d", &n); err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad max %q", maxStr)
			return
		}
		if n < len(points) {
			points = subsample(points, n)
		}
	}
	rows := make([]map[string]any, len(points))
	for i, pt := range points {
		rows[i] = map[string]any{
			"arch": pt.Arch, "arch_string": pt.Arch.String(),
			"area_mm2": pt.Area, "total_pes": pt.Arch.TotalPEs(),
			"capacity": pt.Arch.Capacity(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "designs": rows})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	body := map[string]any{
		"status":         "ok",
		"version":        version.Get("wsd"),
		"workers":        s.workers,
		"busy":           s.busy.Load(),
		"queue_depth":    len(s.queue),
		"queue_capacity": s.queueDepth,
		"cache": map[string]any{
			"cells": st.Cells, "limit": st.Limit,
			"hits": st.Hits, "misses": st.Misses,
			"evictions": st.Evictions, "hit_ratio": st.HitRatio(),
		},
		"uptime_s": time.Since(s.start).Seconds(),
	}
	if s.isClosing() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, []gauge{
		{"wsd_queue_depth", "Jobs waiting in the admission queue.", float64(len(s.queue))},
		{"wsd_queue_capacity", "Admission queue bound.", float64(s.queueDepth)},
		{"wsd_workers", "Worker pool size.", float64(s.workers)},
		{"wsd_workers_busy", "Workers executing a job right now.", float64(s.busy.Load())},
		{"wsd_cache_entries", "Cells in the result cache.", float64(st.Cells)},
		{"wsd_cache_limit", "LRU cap on the result cache (0 = unlimited).", float64(st.Limit)},
		{"wsd_cache_hits_total", "Result-cache lookups answered without simulating.", float64(st.Hits)},
		{"wsd_cache_misses_total", "Result-cache lookups that required work.", float64(st.Misses)},
		{"wsd_cache_evictions_total", "Cells evicted by the LRU limit.", float64(st.Evictions)},
		{"wsd_cache_hit_ratio", "Hits over all cache lookups.", st.HitRatio()},
	})
}
