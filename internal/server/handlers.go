package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"wavescalar/internal/area"
	"wavescalar/internal/cli"
	"wavescalar/internal/cluster"
	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/fault"
	"wavescalar/internal/sim"
	"wavescalar/internal/version"
	"wavescalar/internal/workload"
)

// routes builds the instrumented mux. Every route is wrapped so request
// counts and latency histograms are labeled by pattern, not raw URL (no
// cardinality explosion from job ids).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/workloads", s.handleWorkloads)
	handle("GET /v1/designs", s.handleDesigns)
	handle("POST /v1/runs", s.handleRun)
	handle("POST /v1/predict", s.handlePredict)
	handle("POST /v1/sweeps", s.handleSweep)
	handle("POST /v1/scenarios", s.handleScenarioPost)
	handle("GET /v1/scenarios/{digest}", s.handleScenarioGet)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	// Fabric endpoints. execute is served in every role ("any node can
	// answer any cell"); the membership endpoints require a coordinator.
	handle("POST /v1/cluster/execute", s.handleClusterExecute)
	handle("POST /v1/cluster/register", s.handleClusterRegister)
	handle("POST /v1/cluster/heartbeat", s.handleClusterHeartbeat)
	handle("POST /v1/cluster/deregister", s.handleClusterDeregister)
	handle("POST /v1/cluster/journal", s.handleClusterJournal)
	handle("GET /v1/cluster/workers", s.handleClusterWorkers)
	return mux
}

// retryAfterValue renders the 429 Retry-After hint: the configured base
// jittered ±20%, so a thundering herd of synchronized clients (or a
// fleet of coordinators retrying cells) spreads out instead of returning
// in lockstep.
func (s *Server) retryAfterValue() string {
	jittered := s.retryAfter.Seconds() * (0.8 + 0.4*rand.Float64())
	secs := int(math.Round(jittered))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeAdmissionErr maps an admission failure (full queue, over-quota
// tenant, shutdown) onto the API's backpressure responses. The two 429
// causes carry distinct machine-readable codes so clients can tell
// "the daemon is saturated" from "my tenant is over quota".
func (s *Server) writeAdmissionErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.add(&s.metrics.rejectedFull, 1)
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeErrCode(w, http.StatusTooManyRequests, "queue_full", "admission queue full; retry")
	case errors.Is(err, errQuotaExceeded):
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeErrCode(w, http.StatusTooManyRequests, "quota_exceeded", "tenant quota exceeded; retry")
	default:
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
	}
}

// admit charges the request's tenant quota and enqueues the job,
// settling the quota on failure. On success the job carries the tenant
// and the worker pool releases it when the job resolves.
func (s *Server) admit(r *http.Request, jb *job) error {
	tenant := tenantOf(r)
	if err := s.quotas.acquire(tenant); err != nil {
		return err
	}
	jb.tenant = tenant
	if err := s.enqueue(jb); err != nil {
		jb.tenant = ""
		s.quotas.release(tenant)
		return err
	}
	return nil
}

// statusWriter captures the response code for metrics and whether any
// bytes have been written — the panic middleware can only substitute a
// 500 while the response is still untouched.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request metrics and panic recovery. A
// panicking handler must not take the daemon down with it: the panic is
// logged with a request id and a stack trace, counted in
// wsd_panics_total, and — if the handler had not started the response —
// answered with a 500 carrying the same request id so operators can
// correlate the client-visible error with the server log.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				id := s.reqSeq.Add(1)
				s.metrics.add(&s.metrics.panics, 1)
				log.Printf("server: panic serving %s (request %d): %v\n%s", pattern, id, rec, debug.Stack())
				if !sw.wrote {
					writeErr(sw, http.StatusInternalServerError, "internal error (request %d)", id)
				}
			}
			s.metrics.observeRequest(pattern, r.Method, sw.code, time.Since(start).Seconds())
		}()
		h(sw, r)
	})
}

// writeJSON responds with one JSON object in the shared CLI convention.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	cli.WriteJSON(w, v)
}

// apiError is the API's uniform error envelope: every non-2xx response
// body is {"error":{"code","message"}}, where code is a stable
// machine-readable slug and message is for humans.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errCode maps an HTTP status to its default error code. Handlers that
// need a more specific code (queue_full vs quota_exceeded, both 429) use
// writeErrCode directly.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// writeErr responds with the API's uniform error envelope, deriving the
// code from the status.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeErrCode(w, code, errCode(code), fmt.Sprintf(format, args...))
}

// writeErrCode responds with an explicit error code.
func writeErrCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]apiError{"error": {Code: code, Message: msg}})
}

// archSpec is the request-side architecture description: any subset of
// the seven Table 3 parameters plus the k-loop bound; omitted fields keep
// their Table 1 baseline values.
type archSpec struct {
	Clusters int `json:"clusters"`
	Domains  int `json:"domains"`
	PEs      int `json:"pes"`
	Virt     int `json:"virt"`
	Match    int `json:"match"`
	L1KB     int `json:"l1_kb"`
	L2MB     int `json:"l2_mb"`
	K        int `json:"k"`
}

// resolve merges the spec over the baseline and validates the result.
func (a *archSpec) resolve() (sim.Config, error) {
	arch := sim.BaselineArch()
	if a != nil {
		set := func(dst *int, v int) {
			if v != 0 {
				*dst = v
			}
		}
		set(&arch.Clusters, a.Clusters)
		set(&arch.Domains, a.Domains)
		set(&arch.PEs, a.PEs)
		set(&arch.Virt, a.Virt)
		set(&arch.Match, a.Match)
		set(&arch.L1KB, a.L1KB)
		set(&arch.L2MB, a.L2MB)
	}
	cfg := sim.Baseline(arch)
	if a != nil && a.K != 0 {
		cfg.K = a.K
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// runRequest is the body of POST /v1/runs. Either workload (+ scale,
// threads, fault) or scenario is set: scenario is a stored digest string
// or an inline scenario document and carries those axes itself.
type runRequest struct {
	Workload string          `json:"workload,omitempty"`
	Scale    string          `json:"scale,omitempty"`     // default "tiny"
	Threads  int             `json:"threads,omitempty"`   // default 1
	Config   *archSpec       `json:"config,omitempty"`    // default Table 1 baseline
	Fault    *fault.Script   `json:"fault,omitempty"`     // optional fault-injection script
	Scenario json.RawMessage `json:"scenario,omitempty"`  // digest string or inline document
	TimeoutS float64         `json:"timeout_s,omitempty"` // wait bound; default server-wide
}

// runResult is the deterministic payload of one measurement — derived
// entirely from the cached cell, so cold runs, singleflight followers and
// warm-restart cache hits serve byte-identical results.
type runResult struct {
	App       string  `json:"app"`
	Arch      string  `json:"arch"`
	AreaMM2   float64 `json:"area_mm2"`
	Scale     string  `json:"scale"`
	Threads   int     `json:"threads"`
	AIPC      float64 `json:"aipc"`
	Cycles    uint64  `json:"cycles"`
	SimCycles uint64  `json:"sim_cycles"`
	Err       string  `json:"err,omitempty"`
}

type runResponse struct {
	Key    string    `json:"key"`
	Cached bool      `json:"cached"`
	Result runResult `json:"result"`
}

func cellResult(cell explore.Cell, areaMM2 float64, scale string) runResult {
	return runResult{
		App: cell.App, Arch: cell.Arch, AreaMM2: areaMM2, Scale: scale,
		Threads: cell.Threads, AIPC: cell.AIPC,
		Cycles: cell.Cycles, SimCycles: cell.SimCycles, Err: cell.Err,
	}
}

// resolvedRun is a runRequest lowered to a runnable cell: the same
// (config, workload, scale, threads) tuple plus the derived display
// values. Both /v1/runs and /v1/predict resolve through here, so the
// predict fallback can serve bytes the run path would have produced.
type resolvedRun struct {
	cfg       sim.Config
	w         workload.Workload
	scale     workload.Scale
	scaleName string
	threads   int
	areaMM2   float64
	key       string
}

// resolveRun validates the per-run fields of a request. The returned
// status is meaningful only on error.
func resolveRun(req *runRequest) (resolvedRun, int, error) {
	if req.Workload == "" {
		return resolvedRun{}, http.StatusBadRequest, errors.New("workload or scenario is required")
	}
	wl, err := workload.ByName(req.Workload)
	if err != nil {
		return resolvedRun{}, http.StatusNotFound, err
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "tiny"
	}
	sc, err := cli.ParseScale(scaleName)
	if err != nil {
		return resolvedRun{}, http.StatusBadRequest, err
	}
	if req.Threads == 0 {
		req.Threads = 1
	}
	if req.Threads < 0 {
		return resolvedRun{}, http.StatusBadRequest, fmt.Errorf("threads %d must be positive", req.Threads)
	}
	cfg, err := req.Config.resolve()
	if err != nil {
		return resolvedRun{}, http.StatusBadRequest, fmt.Errorf("bad config: %w", err)
	}
	if !req.Fault.Empty() {
		if err := req.Fault.Validate(sim.FaultShape(cfg)); err != nil {
			return resolvedRun{}, http.StatusBadRequest, fmt.Errorf("bad fault script: %w", err)
		}
		cfg.Fault = req.Fault
	}
	return resolvedRun{
		cfg: cfg, w: wl, scale: sc, scaleName: scaleName,
		threads: req.Threads, areaMM2: area.Total(cfg.Arch),
		key: explore.CellKey(cfg, wl.Name, sc, []int{req.Threads}),
	}, 0, nil
}

// serveRun answers a resolved run exactly like POST /v1/runs: cache fast
// path, singleflight join, bounded admission, timed wait. /v1/predict
// falls back through this same function, so a low-confidence prediction
// and a plain run produce byte-identical responses.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, res resolvedRun, timeoutS float64) {
	// Fast path: the cache (memory or replayed journal) already has it.
	if cell, ok := s.cache.Cell(res.key); ok {
		writeJSON(w, http.StatusOK, runResponse{Key: res.key, Cached: true, Result: cellResult(cell, res.areaMM2, res.scaleName)})
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	call, leader := s.flight.join(res.key)
	if leader {
		jb := &job{
			kind: "run", key: res.key, call: call,
			run: &runSpec{cfg: res.cfg, w: res.w, scale: res.scale, threadCounts: []int{res.threads}},
		}
		if err := s.admit(r, jb); err != nil {
			s.flight.abandon(res.key, call, err)
			s.writeAdmissionErr(w, err)
			return
		}
	} else {
		s.metrics.add(&s.metrics.dedupShared, 1)
	}

	timeout := s.requestTimeout
	if timeoutS > 0 {
		timeout = time.Duration(timeoutS * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case <-call.done:
		if call.err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", call.err)
			return
		}
		writeJSON(w, http.StatusOK, runResponse{Key: res.key, Cached: false, Result: cellResult(call.cell, res.areaMM2, res.scaleName)})
	case <-ctx.Done():
		// The simulation keeps running and will be cached; a retry after
		// it completes is a cache hit.
		writeErr(w, http.StatusGatewayTimeout, "deadline exceeded waiting for simulation; retry later for the cached result")
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Scenario) > 0 {
		s.handleScenarioRun(w, r, &req)
		return
	}
	res, status, err := resolveRun(&req)
	if err != nil {
		writeErr(w, status, "%v", err)
		return
	}
	s.serveRun(w, r, res, req.TimeoutS)
}

// sweepRequest is the body of POST /v1/sweeps: a suite, explicit app
// list, or scenario evaluated over the viable design space, optionally
// subsampled. A scenario supplies apps, scale, thread counts and fault
// script itself (and must be uniform across its phases).
type sweepRequest struct {
	Suite        string          `json:"suite,omitempty"`
	Apps         []string        `json:"apps,omitempty"`
	Scenario     json.RawMessage `json:"scenario,omitempty"`      // digest string or inline document
	Scale        string          `json:"scale,omitempty"`         // default "tiny"
	ThreadCounts []int           `json:"thread_counts,omitempty"` // default {1}; splash2 defaults to {1,4,16,64}
	MaxPoints    int             `json:"max_points,omitempty"`    // 0 = every viable design
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	var (
		apps      []workload.Workload
		sc        workload.Scale
		counts    []int
		configure design.ConfigureFunc
	)
	if len(req.Scenario) > 0 {
		if req.Suite != "" || len(req.Apps) > 0 || req.Scale != "" || len(req.ThreadCounts) > 0 {
			writeErr(w, http.StatusBadRequest,
				"scenario is mutually exclusive with suite, apps, scale and thread_counts (the scenario carries them)")
			return
		}
		scn, status, err := s.resolveScenario(req.Scenario)
		if err != nil {
			writeErr(w, status, "%v", err)
			return
		}
		plan, err := scenarioSweepPlan(scn)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		apps, sc, counts, configure = plan.apps, plan.scale, plan.threads, plan.configure()
	} else {
		switch {
		case len(req.Apps) > 0:
			for _, name := range req.Apps {
				wl, err := workload.ByName(name)
				if err != nil {
					writeErr(w, http.StatusNotFound, "%v", err)
					return
				}
				apps = append(apps, wl)
			}
		case req.Suite != "":
			suite, ok := suiteByName(req.Suite)
			if !ok {
				writeErr(w, http.StatusBadRequest, "unknown suite %q (spec2000, mediabench, splash2, tiled)", req.Suite)
				return
			}
			apps = workload.BySuite(suite)
		default:
			writeErr(w, http.StatusBadRequest, "suite, apps or scenario is required")
			return
		}

		scaleName := req.Scale
		if scaleName == "" {
			scaleName = "tiny"
		}
		var err error
		sc, err = cli.ParseScale(scaleName)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		counts = req.ThreadCounts
		if len(counts) == 0 {
			counts = []int{1}
			if req.Suite == "splash2" {
				counts = []int{1, 4, 16, 64}
			}
		}
		for _, n := range counts {
			if n < 1 {
				writeErr(w, http.StatusBadRequest, "thread count %d must be positive", n)
				return
			}
		}
	}
	points := design.Viable()
	if req.MaxPoints > 0 && req.MaxPoints < len(points) {
		points = subsample(points, req.MaxPoints)
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	jb := &job{
		kind:  "sweep",
		sweep: &sweepSpec{points: points, apps: apps, scale: sc, threadCounts: counts, configure: configure},
		ctx:   ctx, cancel: cancel,
		state: stateQueued,
	}
	jb.progress.Total = len(points) * len(apps)
	id := s.jobs.add(jb)
	if err := s.admit(r, jb); err != nil {
		s.jobs.remove(id)
		cancel()
		s.writeAdmissionErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "status": stateQueued,
		"cells": len(points) * len(apps),
		"poll":  "/v1/jobs/" + id,
	})
}

// subsample picks n points evenly across the ordered design list, the
// same policy as wspareto -max.
func subsample(pts []design.Point, n int) []design.Point {
	out := make([]design.Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

func suiteByName(name string) (workload.Suite, bool) {
	for _, su := range workload.Suites() {
		if su.String() == name {
			return su, true
		}
	}
	return 0, false
}

// jobProgress is the wire form of a sweep's progress.
type jobProgress struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	CacheHits int     `json:"cache_hits"`
	Simulated int     `json:"simulated"`
	Remote    int     `json:"remote"`
	Failed    int     `json:"failed"`
	SimCycles uint64  `json:"sim_cycles"`
	ElapsedS  float64 `json:"elapsed_s"`
}

// sweepRow is one design's outcome in a finished sweep job.
type sweepRow struct {
	Arch     string             `json:"arch"`
	AreaMM2  float64            `json:"area_mm2"`
	MeanAIPC float64            `json:"mean_aipc"`
	AIPC     map[string]float64 `json:"aipc,omitempty"`
	Threads  map[string]int     `json:"threads,omitempty"`
	Err      string             `json:"err,omitempty"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	state, p, results, jerr := jb.snapshot()
	resp := map[string]any{
		"id":    id,
		"state": state,
		"progress": jobProgress{
			Done: p.Done, Total: p.Total, CacheHits: p.CacheHits,
			Simulated: p.Simulated, Remote: p.Remote, Failed: p.Failed,
			SimCycles: p.SimCycles, ElapsedS: p.Elapsed.Seconds(),
		},
	}
	if jerr != nil {
		resp["error"] = jerr.Error()
	}
	if state == stateDone {
		rows := make([]sweepRow, len(results))
		for i, res := range results {
			rows[i] = sweepRow{
				Arch: res.Arch.String(), AreaMM2: res.Area, MeanAIPC: res.Mean,
				AIPC: res.AIPC, Threads: res.Threads,
			}
			if res.Err != nil {
				rows[i].Err = res.Err.Error()
			}
		}
		frontier := design.Frontier(results)
		front := make([]map[string]any, len(frontier))
		for i, f := range frontier {
			front[i] = map[string]any{"arch": f.Arch.String(), "area_mm2": f.Area, "aipc": f.AIPC}
		}
		resp["result"] = map[string]any{"designs": rows, "frontier": front}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	jb.cancel()
	state, _, _, _ := jb.snapshot()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": state, "status": "cancel requested"})
}

// workloadRow is one entry of the structured GET /v1/workloads listing.
// Tiled kernels additionally expose their decomposed tiling parameters,
// so clients can enumerate the tiling axes of the design space without
// parsing names.
type workloadRow struct {
	Name   string      `json:"name"`
	Suite  string      `json:"suite"`
	Scales []string    `json:"scales"`
	Tiling *tilingInfo `json:"tiling,omitempty"`
}

type tilingInfo struct {
	Family string `json:"family"` // "gemm" or "conv"
	Order  string `json:"order"`  // dataflow order, e.g. "os", "ws"
	Tile   [3]int `json:"tile"`   // gemm: Tm×Tn×Tk; conv: Tx×Ty×Tc
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	all := workload.All()
	rows := make([]workloadRow, len(all))
	for i, wl := range all {
		rows[i] = workloadRow{
			Name: wl.Name, Suite: wl.Suite.String(),
			Scales: []string{"tiny", "small", "medium"},
		}
		if family, order, tile, ok := workload.TiledInfo(wl.Name); ok {
			rows[i].Tiling = &tilingInfo{Family: family, Order: order, Tile: tile}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "workloads": rows})
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	points := design.Viable()
	if maxStr := r.URL.Query().Get("max"); maxStr != "" {
		var n int
		if _, err := fmt.Sscanf(maxStr, "%d", &n); err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad max %q", maxStr)
			return
		}
		if n < len(points) {
			points = subsample(points, n)
		}
	}
	rows := make([]map[string]any, len(points))
	for i, pt := range points {
		rows[i] = map[string]any{
			"arch": pt.Arch, "arch_string": pt.Arch.String(),
			"area_mm2": pt.Area, "total_pes": pt.Arch.TotalPEs(),
			"capacity": pt.Arch.Capacity(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "designs": rows})
}

// requireCoordinator gates the membership endpoints: only a coordinator
// owns a worker registry.
func (s *Server) requireCoordinator(w http.ResponseWriter) bool {
	if s.coord == nil {
		writeErr(w, http.StatusConflict, "not a coordinator (role %s)", s.role)
		return false
	}
	return true
}

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req cluster.RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeErr(w, http.StatusBadRequest, "id and addr are required")
		return
	}
	s.coord.Registry().Register(req)
	log.Printf("server: cluster worker %s registered at %s (version %s)", req.ID, req.Addr, req.Version.Version)
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{
		LeaseS:  s.coord.Registry().TTL().Seconds(),
		Version: version.Get("wsd"),
	})
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req cluster.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !s.coord.Registry().Heartbeat(req.ID, req.Busy) {
		// Unknown lease (coordinator restart or expiry): the agent
		// re-registers on 404.
		writeErr(w, http.StatusNotFound, "unknown worker %q; re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, cluster.HeartbeatResponse{OK: true, Version: version.Get("wsd")})
}

func (s *Server) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req cluster.DeregisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	found := s.coord.Registry().Deregister(req.ID)
	if found {
		log.Printf("server: cluster worker %s deregistered (graceful drain)", req.ID)
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": found, "version": version.Get("wsd")})
}

// handleClusterJournal folds a worker's shipped journal delta into the
// coordinator's result space. The body is raw JSONL — the exact bytes
// of the worker's journal tail — staged to a temp file and merged
// through the explorer's idempotent MergeJournal: new cells land in the
// coordinator's cache *and* journal (so the merge survives the next
// warm restart), already-known keys are skipped. This is what keeps a
// worker cold-restart from losing cells it simulated outside a sweep.
func (s *Server) handleClusterJournal(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	received := bytes.Count(body, []byte{'\n'})
	if len(body) > 0 && body[len(body)-1] != '\n' {
		received++
	}
	tmp, err := os.CreateTemp("", "wsd-journal-*.jsonl")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "staging journal delta: %v", err)
		return
	}
	defer os.Remove(tmp.Name())
	_, werr := tmp.Write(body)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		writeErr(w, http.StatusInternalServerError, "staging journal delta: %v", werr)
		return
	}
	merged, err := s.exp.MergeJournal(tmp.Name())
	if err != nil {
		// Partial merges are fine (idempotence makes the re-ship safe);
		// tell the worker so it retries the whole delta.
		writeErr(w, http.StatusBadRequest, "merging journal delta: %v", err)
		return
	}
	s.metrics.add(&s.metrics.journalMerged, uint64(merged))
	writeJSON(w, http.StatusOK, cluster.JournalResponse{
		Received: received, Merged: merged, Version: version.Get("wsd"),
	})
}

func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	writeJSON(w, http.StatusOK, cluster.WorkersResponse{
		Role:    string(s.role),
		LeaseS:  s.coord.Registry().TTL().Seconds(),
		Version: version.Get("wsd"),
		Workers: s.coord.Registry().Snapshot(),
	})
}

// handleClusterExecute simulates one fully resolved cell on this node —
// the worker half of the dispatch protocol, though every role serves it.
// It reuses the run pipeline end to end: cache fast path, singleflight,
// bounded admission queue (a 429 here is the signal that makes the
// coordinator requeue the cell onto another worker), and cache+journal
// write-through on completion. Fabric traffic is not charged tenant
// quotas: the originating sweep already paid at the coordinator.
func (s *Server) handleClusterExecute(w http.ResponseWriter, r *http.Request) {
	var req cluster.ExecRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Key == "" {
		writeErr(w, http.StatusBadRequest, "key is required")
		return
	}
	wl, err := workload.ByName(req.App)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	req.Config.Trace = nil
	if err := req.Config.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	if err := (design.SweepOptions{
		Scale: req.Scale, ThreadCounts: req.ThreadCounts,
		Parallelism: 1, Configure: design.BaselineConfigure,
	}).Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !req.Config.Fault.Empty() {
		if err := req.Config.Fault.Validate(sim.FaultShape(req.Config)); err != nil {
			writeErr(w, http.StatusBadRequest, "bad fault script: %v", err)
			return
		}
	}
	key := explore.CellKey(req.Config, wl.Name, req.Scale, req.ThreadCounts)
	if key != req.Key {
		// The mixed-version guard: committing under a drifted key schema
		// would corrupt the shared result space.
		writeErr(w, http.StatusConflict,
			"cell key mismatch: computed %s for requested %s (local version %s — mixed-version fabric?)",
			key, req.Key, version.Version)
		return
	}
	respond := func(cell explore.Cell, cached bool) {
		writeJSON(w, http.StatusOK, cluster.ExecResponse{Cell: cell, Cached: cached, Version: version.Get("wsd")})
	}
	if cell, ok := s.cache.Cell(key); ok {
		respond(cell, true)
		return
	}
	if s.isClosing() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	call, leader := s.flight.join(key)
	if leader {
		jb := &job{
			kind: "run", key: key, call: call,
			run: &runSpec{cfg: req.Config, w: wl, scale: req.Scale, threadCounts: req.ThreadCounts},
		}
		if err := s.enqueue(jb); err != nil {
			s.flight.abandon(key, call, err)
			s.writeAdmissionErr(w, err)
			return
		}
	} else {
		s.metrics.add(&s.metrics.dedupShared, 1)
	}
	select {
	case <-call.done:
		if call.err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", call.err)
			return
		}
		respond(call.cell, false)
	case <-r.Context().Done():
		// The coordinator timed out this attempt and will requeue the
		// cell; the simulation continues and lands in this node's cache,
		// so the retry (or any future request) is a fast hit.
		writeErr(w, http.StatusGatewayTimeout, "caller gave up; the cell continues and will be cached")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	body := map[string]any{
		"status":         "ok",
		"version":        version.Get("wsd"),
		"role":           string(s.role),
		"workers":        s.workers,
		"busy":           s.busy.Load(),
		"queue_depth":    len(s.queue),
		"queue_capacity": s.queueDepth,
		"cache": map[string]any{
			"cells": st.Cells, "limit": st.Limit,
			"hits": st.Hits, "misses": st.Misses,
			"evictions": st.Evictions, "hit_ratio": st.HitRatio(),
		},
		"uptime_s": time.Since(s.start).Seconds(),
	}
	if s.coord != nil {
		cs := s.coord.Stats()
		body["cluster"] = map[string]any{
			"workers":      cs.Workers,
			"remote_cells": cs.RemoteCells,
			"requeues":     cs.Requeues,
		}
	}
	if s.sur != nil {
		info := map[string]any{"threshold": s.sur.threshold, "trained": s.sur.model != nil}
		if s.sur.model != nil {
			info["kind"] = s.sur.model.Kind
			info["samples"] = s.sur.model.Samples
		}
		body["surrogate"] = info
	}
	if s.isClosing() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, []gauge{
		{"wsd_queue_depth", "Jobs waiting in the admission queue.", float64(len(s.queue))},
		{"wsd_queue_capacity", "Admission queue bound.", float64(s.queueDepth)},
		{"wsd_workers", "Worker pool size.", float64(s.workers)},
		{"wsd_workers_busy", "Workers executing a job right now.", float64(s.busy.Load())},
		{"wsd_cache_entries", "Cells in the result cache.", float64(st.Cells)},
		{"wsd_cache_limit", "LRU cap on the result cache (0 = unlimited).", float64(st.Limit)},
		{"wsd_cache_hits_total", "Result-cache lookups answered without simulating.", float64(st.Hits)},
		{"wsd_cache_misses_total", "Result-cache lookups that required work.", float64(st.Misses)},
		{"wsd_cache_evictions_total", "Cells evicted by the LRU limit.", float64(st.Evictions)},
		{"wsd_cache_hit_ratio", "Hits over all cache lookups.", st.HitRatio()},
	})

	bi := version.Get("wsd")
	fmt.Fprintf(w, "# HELP wsd_build_info Build identity of this daemon (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE wsd_build_info gauge\n")
	fmt.Fprintf(w, "wsd_build_info{version=%q,commit=%q,go=%q,role=%q} 1\n", bi.Version, bi.Commit, bi.Go, s.role)

	fmt.Fprintf(w, "# HELP wsd_quota_rejected_total Requests rejected with 429 because the tenant was over its admission quota.\n")
	fmt.Fprintf(w, "# TYPE wsd_quota_rejected_total counter\n")
	fmt.Fprintf(w, "wsd_quota_rejected_total %d\n", s.quotas.rejections())

	// Fabric metrics exist only where the fabric does: on the coordinator.
	if s.coord != nil {
		cs := s.coord.Stats()
		fmt.Fprintf(w, "# HELP wsd_cluster_workers Workers currently holding a live lease.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_workers gauge\n")
		fmt.Fprintf(w, "wsd_cluster_workers %d\n", cs.Workers)
		fmt.Fprintf(w, "# HELP wsd_cluster_worker_inflight Cells currently dispatched to each worker.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_worker_inflight gauge\n")
		for _, wi := range s.coord.Registry().Snapshot() {
			fmt.Fprintf(w, "wsd_cluster_worker_inflight{worker=%q} %d\n", wi.ID, wi.Inflight)
		}
		fmt.Fprintf(w, "# HELP wsd_cluster_cells_dispatched_total Cell execution attempts sent to workers.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_cells_dispatched_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_cells_dispatched_total %d\n", cs.Dispatched)
		fmt.Fprintf(w, "# HELP wsd_cluster_remote_cells_total Cells completed by workers.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_remote_cells_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_remote_cells_total %d\n", cs.RemoteCells)
		fmt.Fprintf(w, "# HELP wsd_cluster_requeues_total Failed attempts retried on another worker.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_requeues_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_requeues_total %d\n", cs.Requeues)
		fmt.Fprintf(w, "# HELP wsd_cluster_remote_errors_total Cell execution attempts that failed.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_remote_errors_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_remote_errors_total %d\n", cs.RemoteErrors)
		fmt.Fprintf(w, "# HELP wsd_cluster_lease_expirations_total Workers dropped for missing heartbeats.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_lease_expirations_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_lease_expirations_total %d\n", cs.LeaseExpirations)
		s.metrics.mu.Lock()
		merged := s.metrics.journalMerged
		s.metrics.mu.Unlock()
		fmt.Fprintf(w, "# HELP wsd_cluster_journal_merged_total New cells folded in from shipped worker journal deltas.\n")
		fmt.Fprintf(w, "# TYPE wsd_cluster_journal_merged_total counter\n")
		fmt.Fprintf(w, "wsd_cluster_journal_merged_total %d\n", merged)
	}

	// Surrogate serving metrics exist only when a model was configured.
	if s.sur != nil {
		s.sur.mu.Lock()
		predictions := s.sur.predictions
		reasons := make([]string, 0, len(s.sur.fallbacks))
		for reason := range s.sur.fallbacks {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		counts := make([]uint64, len(reasons))
		for i, reason := range reasons {
			counts[i] = s.sur.fallbacks[reason]
		}
		validations, errSum := s.sur.validations, s.sur.errSum
		s.sur.mu.Unlock()

		fmt.Fprintf(w, "# HELP wsd_surrogate_predictions_total /v1/predict requests answered from the model without simulating.\n")
		fmt.Fprintf(w, "# TYPE wsd_surrogate_predictions_total counter\n")
		fmt.Fprintf(w, "wsd_surrogate_predictions_total %d\n", predictions)
		fmt.Fprintf(w, "# HELP wsd_surrogate_fallbacks_total /v1/predict requests that fell back to the simulation pipeline, by reason.\n")
		fmt.Fprintf(w, "# TYPE wsd_surrogate_fallbacks_total counter\n")
		for i, reason := range reasons {
			fmt.Fprintf(w, "wsd_surrogate_fallbacks_total{reason=%q} %d\n", reason, counts[i])
		}
		fmt.Fprintf(w, "# HELP wsd_surrogate_validations_total Predicted cells later simulated for real (the observed-error sample count).\n")
		fmt.Fprintf(w, "# TYPE wsd_surrogate_validations_total counter\n")
		fmt.Fprintf(w, "wsd_surrogate_validations_total %d\n", validations)
		fmt.Fprintf(w, "# HELP wsd_surrogate_observed_error_sum Summed relative AIPC error of validated predictions (divide by validations for the mean).\n")
		fmt.Fprintf(w, "# TYPE wsd_surrogate_observed_error_sum counter\n")
		fmt.Fprintf(w, "wsd_surrogate_observed_error_sum %g\n", errSum)
		if s.sur.model != nil {
			fmt.Fprintf(w, "# HELP wsd_surrogate_model_samples Training-set size of the serving model.\n")
			fmt.Fprintf(w, "# TYPE wsd_surrogate_model_samples gauge\n")
			fmt.Fprintf(w, "wsd_surrogate_model_samples %d\n", s.sur.model.Samples)
		}
		fmt.Fprintf(w, "# HELP wsd_surrogate_confidence_threshold RelAIPC gate above which /v1/predict falls back to simulation.\n")
		fmt.Fprintf(w, "# TYPE wsd_surrogate_confidence_threshold gauge\n")
		fmt.Fprintf(w, "wsd_surrogate_confidence_threshold %g\n", s.sur.threshold)
	}

	// Counters owned by the embedding process (WithExternalCounter), e.g.
	// the journal shipper's retry count, sampled live at scrape time.
	for _, ec := range s.external {
		if ec.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", ec.name, ec.help)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", ec.name)
		fmt.Fprintf(w, "%s %d\n", ec.name, ec.value())
	}
}
