package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Admission failures, mapped to HTTP statuses by the handlers.
var (
	// errQueueFull means the bounded admission queue rejected the job —
	// the backpressure signal behind 429 + Retry-After.
	errQueueFull = errors.New("server: admission queue full")
	// errShuttingDown means the server has stopped admitting work.
	errShuttingDown = errors.New("server: shutting down")
)

// Job states, as reported by GET /v1/jobs/{id}.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// runSpec is the resolved work of one POST /v1/runs or
// POST /v1/cluster/execute: a fully validated simulator configuration
// plus workload, so the worker does no parsing.
type runSpec struct {
	cfg          sim.Config
	w            workload.Workload
	scale        workload.Scale
	threadCounts []int
}

// sweepSpec is the resolved work of one POST /v1/sweeps. configure, when
// non-nil, overrides the explorer's point→config mapping (scenario sweeps
// use it to fold a fault script into every design point).
type sweepSpec struct {
	points       []design.Point
	apps         []workload.Workload
	scale        workload.Scale
	threadCounts []int
	configure    design.ConfigureFunc
}

// job is one unit of queued work: a synchronous run (completed through
// its flight call), a synchronous multi-phase scenario run, or an
// asynchronous sweep (tracked in the job registry).
type job struct {
	kind string // "run", "scenario" or "sweep"
	// tenant is the admission-quota bucket this job occupies until it
	// resolves ("" when quotas are disabled or the job never acquired).
	tenant string

	// Run jobs: the singleflight call every waiter blocks on.
	key  string
	call *flightCall
	run  *runSpec

	// Scenario jobs: the ordered phases and their completion channel.
	scn *scenarioSpec

	// Sweep jobs: identity, per-job cancellation and observable state.
	id     string
	sweep  *sweepSpec
	ctx    context.Context
	cancel context.CancelFunc

	// block, when non-nil, makes the worker park until it is closed —
	// a test hook for exercising queue-full and drain paths
	// deterministically.
	block chan struct{}

	mu       sync.Mutex
	state    string
	progress explore.Progress
	results  []design.SweepResult
	err      error
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

func (j *job) setProgress(p explore.Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// snapshot returns a consistent view for the status endpoint.
func (j *job) snapshot() (state string, p explore.Progress, results []design.SweepResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.progress, j.results, j.err
}

// finish records a sweep's outcome.
func (j *job) finish(results []design.SweepResult, err error, cancelled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results, j.err = results, err
	switch {
	case cancelled:
		j.state = stateCancelled
	case err != nil:
		j.state = stateFailed
	default:
		j.state = stateDone
	}
}

// registry tracks async jobs by id.
type registry struct {
	mu   sync.Mutex
	m    map[string]*job
	next int
}

func newRegistry() *registry {
	return &registry{m: make(map[string]*job)}
}

func (r *registry) add(j *job) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	j.id = jobID(r.next)
	r.m[j.id] = j
	return j.id
}

func (r *registry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.m[id]
	return j, ok
}

func (r *registry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, id)
}

// all returns every registered job (for shutdown bookkeeping).
func (r *registry) all() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*job, 0, len(r.m))
	for _, j := range r.m {
		out = append(out, j)
	}
	return out
}

// jobID renders sequential, zero-padded ids: stable, log-friendly, and
// unambiguous in a single-process daemon.
func jobID(n int) string { return fmt.Sprintf("job-%06d", n) }
