// Surrogate serving: POST /v1/predict answers run requests from the
// daemon's trained performance model when the per-prediction uncertainty
// clears the confidence threshold, and transparently falls back to the
// real simulation pipeline — byte-identical to POST /v1/runs — when it
// does not. Real measurements always win: a cached cell is served as a
// plain run response, and fault-injected configurations are never
// answered from the model (the training set excludes them by
// construction).
package server

import (
	"encoding/json"
	"errors"
	"log"
	"math"
	"net/http"
	"sync"

	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/surrogate"
)

// defaultSurrogateThreshold is the RelAIPC confidence gate: predictions
// whose relative uncertainty (sigma/mean) exceeds it fall back to
// simulation.
const defaultSurrogateThreshold = 0.1

// WithSurrogateModel serves /v1/predict from the versioned model file at
// path (written by `wssurrogate train`). Loading is eager: a missing or
// incompatible file fails New, not the first request.
func WithSurrogateModel(path string) Option {
	return func(s *Server) error {
		if path == "" {
			return design.ErrBadOptions
		}
		s.surModelPath = path
		return nil
	}
}

// WithSurrogateTrain trains the serving model at startup from the
// journal-replayed cache. A cache with too few usable cells leaves the
// daemon serving fallbacks only (logged, not fatal), so a fresh journal
// and a warm one take the same configuration.
func WithSurrogateTrain() Option {
	return func(s *Server) error {
		s.surTrain = true
		return nil
	}
}

// WithSurrogateThreshold sets the confidence gate: /v1/predict answers
// from the model only when the prediction's relative AIPC uncertainty
// (sigma/mean) is at most rel (default 0.1).
func WithSurrogateThreshold(rel float64) Option {
	return func(s *Server) error {
		if rel <= 0 {
			return design.ErrBadOptions
		}
		s.surThreshold = rel
		return nil
	}
}

// surrogateState is the serving model plus the bookkeeping that lets
// operators watch it: how often it answered, why it fell back, and how
// far its answers landed from reality whenever a predicted cell was
// later actually simulated.
type surrogateState struct {
	model     *surrogate.Predictor
	threshold float64

	mu          sync.Mutex
	pending     map[string]float64 // cell key → predicted AIPC awaiting a real run
	predictions uint64
	fallbacks   map[string]uint64 // reason → count
	validations uint64
	errSum      float64 // Σ relative |observed − predicted| over validations
}

// newSurrogateState builds the daemon's surrogate, or nil when neither
// surrogate option was given.
func (s *Server) newSurrogateState() (*surrogateState, error) {
	if s.surModelPath == "" && !s.surTrain {
		return nil, nil
	}
	st := &surrogateState{
		threshold: s.surThreshold,
		pending:   make(map[string]float64),
		fallbacks: make(map[string]uint64),
	}
	if st.threshold == 0 {
		st.threshold = defaultSurrogateThreshold
	}
	if s.surModelPath != "" {
		m, err := surrogate.Load(s.surModelPath)
		if err != nil {
			return nil, err
		}
		st.model = m
		return st, nil
	}
	samples := explore.CellSamples(s.cache.Cells())
	m, err := surrogate.Train(samples, surrogate.Options{})
	switch {
	case errors.Is(err, surrogate.ErrTooFewSamples):
		log.Printf("server: surrogate: %d usable cells is too few to train; /v1/predict serves fallbacks until restarted over a fuller journal", len(samples))
		return st, nil
	case err != nil:
		return nil, err
	}
	st.model = m
	log.Printf("server: surrogate trained on %d cells (aipc cv-rmse %.4f)", m.Samples, aipcRMSE(m))
	return st, nil
}

func aipcRMSE(m *surrogate.Predictor) float64 {
	for _, mm := range m.Metrics {
		if mm.Name == surrogate.MetricAIPC {
			return mm.CV.RMSE
		}
	}
	return math.NaN()
}

// fallback records why one /v1/predict request went to the simulator.
func (st *surrogateState) fallback(reason string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.fallbacks[reason]++
	st.mu.Unlock()
}

// predicted records one model-served answer, remembering the prediction
// so a later real simulation of the same cell measures the error.
func (st *surrogateState) predicted(key string, aipc float64) {
	st.mu.Lock()
	st.predictions++
	st.pending[key] = aipc
	st.mu.Unlock()
}

// observe closes the loop on a completed simulation: if the cell was
// ever answered by the model, the relative AIPC error feeds the
// wsd_surrogate_observed_error metrics.
func (st *surrogateState) observe(key string, cell explore.Cell) {
	if st == nil || cell.Err != "" {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	pred, ok := st.pending[key]
	if !ok {
		return
	}
	delete(st.pending, key)
	st.validations++
	st.errSum += math.Abs(cell.AIPC-pred) / math.Max(math.Abs(cell.AIPC), 0.01)
}

// predictModel identifies the serving model in a prediction response.
type predictModel struct {
	Kind      string  `json:"kind"`
	Samples   int     `json:"samples"`
	Threshold float64 `json:"threshold"`
}

// predictResult is the model's answer for one cell. Cycles and Traffic
// are de-logged expectations and 0 when the journal could not train that
// metric; they are float64 (not the run path's exact integers) because
// they are estimates, not measurements.
type predictResult struct {
	App       string  `json:"app"`
	Arch      string  `json:"arch"`
	AreaMM2   float64 `json:"area_mm2"`
	Scale     string  `json:"scale"`
	Threads   int     `json:"threads"`
	AIPC      float64 `json:"aipc"`
	SigmaAIPC float64 `json:"sigma_aipc"`
	RelSigma  float64 `json:"rel_sigma"`
	Cycles    float64 `json:"cycles,omitempty"`
	Traffic   float64 `json:"traffic,omitempty"`
}

// predictResponse is the body of a model-served POST /v1/predict. A
// fallback response is instead the exact runResponse POST /v1/runs would
// have produced.
type predictResponse struct {
	Key    string        `json:"key"`
	Source string        `json:"source"` // always "surrogate"
	Model  predictModel  `json:"model"`
	Result predictResult `json:"result"`
}

// handlePredict serves POST /v1/predict: the request body is exactly a
// /v1/runs body (scenarios excluded — they are multi-cell), and the
// response is either the model's answer (zero simulation) or, when the
// model cannot answer confidently, the byte-identical /v1/runs response.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Scenario) > 0 {
		writeErr(w, http.StatusBadRequest, "scenarios are multi-cell and not predictable; POST /v1/runs instead")
		return
	}
	res, status, err := resolveRun(&req)
	if err != nil {
		writeErr(w, status, "%v", err)
		return
	}

	// Real data always wins: a cached cell is a measurement, so serve it
	// exactly as /v1/runs would (serveRun's fast path).
	if _, ok := s.cache.Cell(res.key); ok {
		s.sur.fallback("cached")
		s.serveRun(w, r, res, req.TimeoutS)
		return
	}
	switch {
	case s.sur == nil || s.sur.model == nil:
		s.sur.fallback("no_model")
	case !res.cfg.Fault.Empty():
		// Fault-injected cells never train the model; never answer them
		// from it either.
		s.sur.fallback("fault")
	default:
		x := surrogate.Features(res.cfg, res.w.Name, res.scale, res.threads)
		pred := s.sur.model.Predict(x)
		if pred.RelAIPC <= s.sur.threshold {
			s.sur.predicted(res.key, pred.AIPC)
			writeJSON(w, http.StatusOK, predictResponse{
				Key:    res.key,
				Source: "surrogate",
				Model: predictModel{
					Kind: s.sur.model.Kind, Samples: s.sur.model.Samples,
					Threshold: s.sur.threshold,
				},
				Result: predictResult{
					App: res.w.Name, Arch: res.cfg.Arch.String(), AreaMM2: res.areaMM2,
					Scale: res.scaleName, Threads: res.threads,
					AIPC: pred.AIPC, SigmaAIPC: pred.SigmaAIPC, RelSigma: pred.RelAIPC,
					Cycles: pred.Cycles, Traffic: pred.Traffic,
				},
			})
			return
		}
		s.sur.fallback("low_confidence")
	}
	s.serveRun(w, r, res, req.TimeoutS)
}
