package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"wavescalar/internal/explore"
	"wavescalar/internal/scenario"
	"wavescalar/internal/sim"
)

// scenarioDoc is a two-phase scenario exercising inheritance (warm
// inherits the top-level workload) and a per-phase override with a fault
// script — the shape the DSL exists for.
const scenarioDoc = `{
  "scenario": "v1",
  "name": "tiled-degradation",
  "workload": {"gemm": {"order": "os", "tm": 4, "tn": 4, "tk": 4}},
  "scale": "tiny",
  "threads": [1],
  "phases": [
    {"name": "warm"},
    {"name": "faulty", "workload": {"name": "conv-ws-4x4x2"},
     "fault": {"seed": 7, "link_flip_rate": 0.001}}
  ]
}`

func postScenario(t *testing.T, baseURL, doc string) scenarioResponse {
	t.Helper()
	resp := post(t, baseURL+"/v1/scenarios", doc)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/scenarios: status %d", resp.StatusCode)
	}
	return decode[scenarioResponse](t, resp)
}

// TestScenarioStore: the content-addressed store end to end — create,
// dedup on re-post (any formatting), fetch by digest, and the rejection
// paths.
func TestScenarioStore(t *testing.T) {
	_, ts := newTestServer(t)

	first := postScenario(t, ts.URL, scenarioDoc)
	if !first.Created || len(first.Digest) != 64 || first.Phases != 2 || first.Name != "tiled-degradation" {
		t.Fatalf("first post: %+v", first)
	}

	// Re-posting the same document reformatted (field order shuffled via
	// a round-trip through a map) must dedup: same digest, created=false.
	var m map[string]any
	if err := json.Unmarshal([]byte(scenarioDoc), &m); err != nil {
		t.Fatal(err)
	}
	reformatted, err := json.MarshalIndent(m, "  ", "\t")
	if err != nil {
		t.Fatal(err)
	}
	again := postScenario(t, ts.URL, string(reformatted))
	if again.Created || again.Digest != first.Digest {
		t.Errorf("re-post: %+v, want created=false digest %s", again, first.Digest)
	}

	// Fetch by digest round-trips the document.
	resp, err := http.Get(ts.URL + "/v1/scenarios/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	fetched := decode[struct {
		Digest   string            `json:"digest"`
		Scenario scenario.Scenario `json:"scenario"`
	}](t, resp)
	if fetched.Digest != first.Digest || fetched.Scenario.Name != "tiled-degradation" {
		t.Errorf("fetched %+v", fetched)
	}
	if fetched.Scenario.Digest() != first.Digest {
		t.Error("fetched scenario re-digests differently")
	}

	// Unknown digest → 404 envelope.
	resp, err = http.Get(ts.URL + "/v1/scenarios/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if apiErr := errEnvelope(t, resp); resp.StatusCode != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("unknown digest: status %d code %q", resp.StatusCode, apiErr.Code)
	}

	// Malformed documents → 400 with the scenario parser's diagnosis.
	for name, doc := range map[string]string{
		"wrong version": `{"scenario":"v2","workload":{"name":"fft"}}`,
		"unknown field": `{"scenario":"v1","workload":{"name":"fft"},"bogus":1}`,
		"no workload":   `{"scenario":"v1"}`,
		"not json":      `nope`,
	} {
		resp := post(t, ts.URL+"/v1/scenarios", doc)
		if apiErr := errEnvelope(t, resp); resp.StatusCode != http.StatusBadRequest || apiErr.Code != "bad_request" {
			t.Errorf("%s: status %d code %q, want 400 bad_request", name, resp.StatusCode, apiErr.Code)
		}
	}
}

// TestScenarioRunMatchesDirect is the API-equivalence acceptance test: a
// scenario executed through POST /v1/runs (by stored digest) must produce
// the same cell keys and the same results as resolving and running the
// phases directly through the Go API.
func TestScenarioRunMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t)
	stored := postScenario(t, ts.URL, scenarioDoc)

	resp := post(t, ts.URL+"/v1/runs", `{"scenario":"`+stored.Digest+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario run: status %d", resp.StatusCode)
	}
	got := decode[scenarioRunResponse](t, resp)
	if got.Scenario != stored.Digest || len(got.Phases) != 2 || got.Cached {
		t.Fatalf("scenario run: %+v", got)
	}

	// Direct Go invocation of the same document: parse, resolve phases,
	// run each through a fresh explorer.
	scn, err := scenario.Parse([]byte(scenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	phases, err := scn.ResolvePhases()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := explore.New()
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	for i, ph := range phases {
		cfg := sim.Baseline(sim.BaselineArch())
		if !ph.Fault.Empty() {
			cfg.Fault = ph.Fault
		}
		cell, cached, err := exp.RunOne(context.Background(), cfg, ph.Workload, ph.Scale, ph.Threads)
		if err != nil || cached {
			t.Fatalf("direct phase %s: cached=%v err=%v", ph.Name, cached, err)
		}
		api := got.Phases[i]
		if api.Phase != ph.Name || api.Key != cell.Key {
			t.Errorf("phase %d: API (%s, %s) vs direct (%s, %s) — key schema drift",
				i, api.Phase, api.Key, ph.Name, cell.Key)
		}
		if api.Result.AIPC != cell.AIPC || api.Result.Cycles != cell.Cycles || api.Result.App != cell.App {
			t.Errorf("phase %s: API result %+v differs from direct cell %+v", ph.Name, api.Result, cell)
		}
	}

	// The fault phase must not share a key with a clean run of the same
	// workload — the script's digest is part of the cell key.
	cleanKey := explore.CellKey(sim.Baseline(sim.BaselineArch()), "conv-ws-4x4x2", phases[1].Scale, phases[1].Threads)
	if got.Phases[1].Key == cleanKey {
		t.Error("faulty phase key collides with clean key")
	}

	// Re-running the scenario is a pure cache hit, phase by phase.
	resp = post(t, ts.URL+"/v1/runs", `{"scenario":"`+stored.Digest+`"}`)
	rerun := decode[scenarioRunResponse](t, resp)
	if !rerun.Cached {
		t.Errorf("re-run not fully cached: %+v", rerun)
	}
	for i, ph := range rerun.Phases {
		if !ph.Cached || ph.Key != got.Phases[i].Key || ph.Result != got.Phases[i].Result {
			t.Errorf("re-run phase %d differs: %+v vs %+v", i, ph, got.Phases[i])
		}
	}
}

// TestScenarioRunValidation: the request-shape rules around the scenario
// field of POST /v1/runs.
func TestScenarioRunValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
		wantSlug   string
	}{
		{"unknown digest", `{"scenario":"feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"}`,
			http.StatusNotFound, "not_found"},
		{"scenario plus workload", `{"workload":"fft","scenario":{"scenario":"v1","workload":{"name":"fft"}}}`,
			http.StatusBadRequest, "bad_request"},
		{"scenario plus threads", `{"threads":2,"scenario":{"scenario":"v1","workload":{"name":"fft"}}}`,
			http.StatusBadRequest, "bad_request"},
		{"malformed inline", `{"scenario":{"scenario":"v1"}}`,
			http.StatusBadRequest, "bad_request"},
		{"wrong inline version", `{"scenario":{"scenario":"v9","workload":{"name":"fft"}}}`,
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/runs", tc.body)
			apiErr := errEnvelope(t, resp)
			if resp.StatusCode != tc.wantCode || apiErr.Code != tc.wantSlug {
				t.Errorf("status %d code %q, want %d %s (%s)",
					resp.StatusCode, apiErr.Code, tc.wantCode, tc.wantSlug, apiErr.Message)
			}
		})
	}

	// An inline scenario needs no prior POST /v1/scenarios.
	resp := post(t, ts.URL+"/v1/runs", `{"scenario":{"scenario":"v1","workload":{"name":"fft"}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline scenario run: status %d", resp.StatusCode)
	}
	inline := decode[scenarioRunResponse](t, resp)
	if len(inline.Phases) != 1 || inline.Phases[0].Result.App != "fft" {
		t.Errorf("inline scenario run: %+v", inline)
	}
}

// TestScenarioSweepValidation: scenario sweeps must be uniform across
// phases and exclusive with the plain sweep axes.
func TestScenarioSweepValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"scenario plus suite", `{"suite":"tiled","scenario":{"scenario":"v1","workload":{"name":"fft"}}}`},
		{"scenario plus scale", `{"scale":"tiny","scenario":{"scenario":"v1","workload":{"name":"fft"}}}`},
		{"non-uniform phases", `{"scenario":{"scenario":"v1","workload":{"name":"fft"},
			"phases":[{"name":"a"},{"name":"b","threads":[4]}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/sweeps", tc.body)
			apiErr := errEnvelope(t, resp)
			if resp.StatusCode != http.StatusBadRequest || apiErr.Code != "bad_request" {
				t.Errorf("status %d code %q (%s), want 400 bad_request", resp.StatusCode, apiErr.Code, apiErr.Message)
			}
		})
	}
}

// TestScenarioSweepMatchesApps: a scenario sweep must be byte-identical
// to the equivalent plain apps sweep — the scenario is sugar over the
// same cells, not a new result space.
func TestScenarioSweepMatchesApps(t *testing.T) {
	const scnBody = `{"max_points":4,"scenario":{"scenario":"v1","scale":"tiny","threads":[1],"phases":[
		{"name":"a","workload":{"gemm":{"order":"os","tm":4,"tn":4,"tk":4}}},
		{"name":"b","workload":{"name":"conv-ws-4x4x2"}}]}}`
	const appsBody = `{"apps":["gemm-os-4x4x4","conv-ws-4x4x2"],"scale":"tiny","max_points":4}`

	_, ts := newTestServer(t)
	want := sweepResult(t, ts.URL, appsBody, nil)
	_, ts2 := newTestServer(t)
	got := sweepResult(t, ts2.URL, scnBody, nil)
	if string(got) != string(want) {
		t.Errorf("scenario sweep differs from apps sweep:\n%s\nvs\n%s", got, want)
	}
}
