package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavescalar/internal/scenario"
)

// storeDoc returns a distinct valid scenario document (keyed by name)
// plus its canonical stored line and digest.
func storeDoc(t *testing.T, name string) (line []byte, digest string) {
	t.Helper()
	doc := fmt.Sprintf(`{
	  "scenario": "v1",
	  "name": %q,
	  "workload": {"name": "fft"},
	  "scale": "tiny",
	  "threads": [1],
	  "phases": [{"name": "only"}]
	}`, name)
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	line, err = json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	return line, sc.Digest()
}

// reloadStore opens a server over the store file and returns it with a
// test listener; any error fails the test — reload must always salvage.
func reloadStore(t *testing.T, path string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(WithScenarioStore(path))
	if err != nil {
		t.Fatalf("reload over damaged store must salvage, got: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestScenarioStoreReloadSkipsCorruptLines: corruption anywhere in the
// file — not just a torn tail — is skipped with every intact record
// kept. A daemon must never refuse to start over one bad byte in a
// content-addressed log.
func TestScenarioStoreReloadSkipsCorruptLines(t *testing.T) {
	lineA, digA := storeDoc(t, "alpha")
	lineB, digB := storeDoc(t, "beta")
	lineC, digC := storeDoc(t, "gamma")

	var buf bytes.Buffer
	buf.Write(lineA)
	buf.WriteByte('\n')
	buf.WriteString("{\"scenario\": \"v1\", truncated mid-reco\n") // torn by a crash mid-append
	buf.Write(lineB)
	buf.WriteByte('\n')
	buf.WriteString("complete garbage, not even JSON\n")
	buf.WriteString("\n")                                    // blank lines are ignored, not warned about
	buf.WriteString(`{"scenario":"v1","name":"bad"}` + "\n") // JSON, but not a valid scenario
	buf.Write(lineA)                                         // duplicate digest collapses
	buf.WriteByte('\n')
	buf.Write(lineC[:len(lineC)*2/3]) // truncated final record, no newline

	path := filepath.Join(t.TempDir(), "wsd.scenarios")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := reloadStore(t, path)
	if n := len(srv.scenarios); n != 2 {
		t.Errorf("loaded %d scenarios, want 2 (intact alpha+beta, dedup'd)", n)
	}
	for _, dig := range []string{digA, digB} {
		if code := getStatus(t, ts.URL+"/v1/scenarios/"+dig); code != http.StatusOK {
			t.Errorf("intact record %s: status %d after reload, want 200", dig[:8], code)
		}
	}
	if code := getStatus(t, ts.URL+"/v1/scenarios/"+digC); code != http.StatusNotFound {
		t.Errorf("truncated record %s: status %d, want 404", digC[:8], code)
	}
}

// TestScenarioStoreReloadAppendAfterSalvage: a salvaged store stays
// writable — new scenarios append past the corruption and survive the
// next restart.
func TestScenarioStoreReloadAppendAfterSalvage(t *testing.T) {
	lineA, digA := storeDoc(t, "alpha")
	path := filepath.Join(t.TempDir(), "wsd.scenarios")
	if err := os.WriteFile(path, append(append([]byte("garbage line\n"), lineA...), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts1 := reloadStore(t, path)
	lineNew, _ := storeDoc(t, "posted-after-salvage")
	posted := postScenario(t, ts1.URL, string(lineNew))
	if !posted.Created {
		t.Fatalf("post after salvage: %+v", posted)
	}
	ts1.Close()

	srv2, ts2 := reloadStore(t, path)
	if n := len(srv2.scenarios); n != 2 {
		t.Errorf("second reload: %d scenarios, want 2", n)
	}
	for _, dig := range []string{digA, posted.Digest} {
		if code := getStatus(t, ts2.URL+"/v1/scenarios/"+dig); code != http.StatusOK {
			t.Errorf("record %s lost across salvage+append+restart: status %d", dig[:8], code)
		}
	}
}

// TestScenarioStoreReloadFuzz: seeded randomized damage — valid records
// interleaved with random corruption (flipped bytes, truncated copies,
// raw noise, duplicates) in random order. Every reload must succeed
// without panicking and serve every record whose line survived intact.
func TestScenarioStoreReloadFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 25; round++ {
		var buf bytes.Buffer
		intact := map[string]bool{} // digest -> must be served
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			line, dig := storeDoc(t, fmt.Sprintf("doc-%d-%d", round, i))
			switch rng.Intn(4) {
			case 0: // intact record
				buf.Write(line)
				buf.WriteByte('\n')
				intact[dig] = true
			case 1: // truncated mid-record (strictly shorter, so never valid)
				cut := 1 + rng.Intn(len(line)-1)
				buf.Write(line[:cut])
				buf.WriteByte('\n')
			case 2: // flipped byte inside the record
				mut := append([]byte(nil), line...)
				mut[rng.Intn(len(mut))] ^= 0xFF
				buf.Write(mut)
				buf.WriteByte('\n')
				if sc, err := scenario.Parse(mut); err == nil {
					intact[sc.Digest()] = true // flip landed somewhere harmless
				}
			case 3: // raw noise
				junk := make([]byte, 1+rng.Intn(40))
				rng.Read(junk)
				buf.WriteString(strings.Map(func(r rune) rune {
					if r == '\n' || r == '\r' {
						return ' '
					}
					return r
				}, string(junk)))
				buf.WriteByte('\n')
			}
			if rng.Intn(3) == 0 { // occasional duplicate of the last line written
				buf.Write(line)
				buf.WriteByte('\n')
				intact[dig] = true
			}
		}
		if rng.Intn(2) == 0 { // torn tail: no trailing newline
			line, _ := storeDoc(t, fmt.Sprintf("torn-%d", round))
			buf.Write(line[:len(line)/2])
		}

		path := filepath.Join(t.TempDir(), fmt.Sprintf("fuzz-%d.scenarios", round))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		srv, ts := reloadStore(t, path)
		if len(srv.scenarios) < len(intact) {
			t.Errorf("round %d: loaded %d scenarios, want at least %d intact", round, len(srv.scenarios), len(intact))
		}
		for dig := range intact {
			if code := getStatus(t, ts.URL+"/v1/scenarios/"+dig); code != http.StatusOK {
				t.Errorf("round %d: intact record %s: status %d, want 200", round, dig[:8], code)
			}
		}
	}
}
