package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestE2EConcurrentIdenticalRuns is the acceptance test for the serving
// model: eight concurrent identical POST /v1/runs must all receive
// byte-identical stats while the simulation executes exactly once
// (singleflight collapses in-flight duplicates, the cache absorbs
// stragglers), and /metrics must reflect the dedup and the hit ratio.
func TestE2EConcurrentIdenticalRuns(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wsd.jsonl")
	srv, err := New(WithWorkers(4), WithJournal(journal, false))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 8
	body := `{"workload":"fft","scale":"tiny","threads":2}`
	type reply struct {
		status int
		parsed struct {
			Key    string          `json:"key"`
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
	}
	replies := make([]reply, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			replies[i].status = resp.StatusCode
			if err := json.NewDecoder(resp.Body).Decode(&replies[i].parsed); err != nil {
				t.Error(err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if r.parsed.Key != replies[0].parsed.Key {
			t.Errorf("request %d: key %s != %s", i, r.parsed.Key, replies[0].parsed.Key)
		}
		if string(r.parsed.Result) != string(replies[0].parsed.Result) {
			t.Errorf("request %d: result differs:\n%s\nvs\n%s", i, r.parsed.Result, replies[0].parsed.Result)
		}
	}

	// The simulation ran exactly once; everyone else shared it. The split
	// between singleflight followers and cache hits depends on timing, but
	// together they account for the other n-1 requests.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, metricsResp)
	if !strings.Contains(text, `wsd_sims_total{outcome="completed"} 1`) {
		t.Errorf("simulation did not run exactly once:\n%s", grepMetric(text, "wsd_sims_total"))
	}
	stats := srv.cache.Stats()
	srv.metrics.mu.Lock()
	shared := srv.metrics.dedupShared
	srv.metrics.mu.Unlock()
	if shared+stats.Hits != n-1 {
		t.Errorf("dedup %d + cache hits %d != %d", shared, stats.Hits, n-1)
	}
	if !strings.Contains(text, "wsd_cache_hit_ratio") {
		t.Error("metrics missing wsd_cache_hit_ratio")
	}

	// Graceful shutdown must not drop the completed result: the journal
	// holds the cell, and a warm restart serves it without simulating.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), replies[0].parsed.Key) {
		t.Errorf("journal does not contain cell %s", replies[0].parsed.Key)
	}

	warm, err := New(WithJournal(journal, true))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Resumed() == 0 {
		t.Fatal("warm restart replayed nothing")
	}
	ts2 := httptest.NewServer(warm)
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	warmReply := decode[struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}](t, resp)
	if !warmReply.Cached {
		t.Error("warm restart did not serve from cache")
	}
	if string(warmReply.Result) != string(replies[0].parsed.Result) {
		t.Errorf("warm result differs:\n%s\nvs\n%s", warmReply.Result, replies[0].parsed.Result)
	}
}

// TestGracefulShutdownDrains proves the three shutdown guarantees: an
// in-flight simulation drains and its waiter gets the result, a
// queued-but-unstarted job is rejected, and new admissions get 503.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, err := New(WithWorkers(1), WithQueueDepth(4), WithRequestTimeout(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		body   map[string]json.RawMessage
	}
	fire := func(body string, out chan<- result) {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			out <- result{}
			return
		}
		defer resp.Body.Close()
		var parsed map[string]json.RawMessage
		json.NewDecoder(resp.Body).Decode(&parsed)
		out <- result{resp.StatusCode, parsed}
	}

	// First run occupies the single worker; wait until it is actually
	// executing so the second run is queued behind it.
	firstCh := make(chan result, 1)
	go fire(`{"workload":"fft","scale":"tiny"}`, firstCh)
	var first result
	gotFirst := false
	deadline := time.Now().Add(30 * time.Second)
	for srv.busy.Load() == 0 {
		select {
		case first = <-firstCh:
			gotFirst = true // sim finished before we observed it in-flight
		default:
		}
		if gotFirst || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	secondCh := make(chan result, 1)
	go fire(`{"workload":"lu","scale":"tiny"}`, secondCh)
	for len(srv.queue) == 0 && srv.busy.Load() > 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// In-flight work drained: the first client holds a real result.
	if !gotFirst {
		first = <-firstCh
	}
	if first.status != http.StatusOK {
		t.Errorf("in-flight run: status %d, want 200 (%s)", first.status, first.body["error"])
	} else if len(first.body["result"]) == 0 {
		t.Error("in-flight run: empty result")
	}

	// The queued-but-unstarted run was rejected — unless the worker got to
	// it before Shutdown flipped the flag, in which case it completed.
	second := <-secondCh
	if second.status != http.StatusServiceUnavailable && second.status != http.StatusOK {
		t.Errorf("queued run: status %d, want 503 (rejected) or 200 (raced ahead)", second.status)
	}

	// Admissions are closed: new (uncached) work and readiness both report
	// draining. (Cache hits are still served during drain, by design.)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"workload":"fft","threads":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown run: status %d, want 503", resp.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	payload := decode[map[string]any](t, health)
	if health.StatusCode != http.StatusServiceUnavailable || payload["status"] != "draining" {
		t.Errorf("healthz during drain: %d %v", health.StatusCode, payload["status"])
	}
}

// TestSingleflightFollowersSurviveLeaderDisconnect: the leader's HTTP
// request is cancelled while the simulation runs; followers still get the
// result because execution is tied to the server, not the request.
func TestSingleflightFollowersSurviveLeaderDisconnect(t *testing.T) {
	srv, err := New(WithWorkers(1), WithRequestTimeout(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	body := `{"workload":"fft","scale":"tiny"}`
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	leaderDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	done := false
	for srv.busy.Load() == 0 && !done {
		select {
		case err := <-leaderDone:
			done = true
			if err == nil {
				t.Log("leader finished before we could disconnect it")
			}
		default:
			time.Sleep(time.Millisecond)
		}
		if time.Now().After(deadline) {
			t.Fatal("leader's run never started")
		}
	}
	cancelLeader()
	if !done {
		<-leaderDone
	}

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	follower := decode[struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}](t, resp)
	if resp.StatusCode != http.StatusOK || len(follower.Result) == 0 {
		t.Fatalf("follower after leader disconnect: status %d, result %s", resp.StatusCode, follower.Result)
	}
}
