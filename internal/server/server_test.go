package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wavescalar/internal/workload"
)

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// errEnvelope decodes the API's uniform {"error":{"code","message"}}
// error shape.
func errEnvelope(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	return decode[map[string]apiError](t, resp)["error"]
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body := decode[map[string]any](t, resp)
	if body["status"] != "ok" {
		t.Errorf("status = %v, want ok", body["status"])
	}
	v, ok := body["version"].(map[string]any)
	if !ok || v["tool"] != "wsd" {
		t.Errorf("version payload missing or wrong: %v", body["version"])
	}
	if _, ok := body["cache"].(map[string]any); !ok {
		t.Errorf("cache stats missing: %v", body)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[struct {
		Count     int `json:"count"`
		Workloads []struct {
			Name, Suite string
		} `json:"workloads"`
	}](t, resp)
	if want := len(workload.All()); body.Count != want || len(body.Workloads) != want {
		t.Errorf("count = %d (%d rows), want %d", body.Count, len(body.Workloads), want)
	}
}

func TestDesignsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/designs?max=5")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[struct {
		Count   int              `json:"count"`
		Designs []map[string]any `json:"designs"`
	}](t, resp)
	if body.Count != 5 || len(body.Designs) != 5 {
		t.Errorf("count = %d (%d rows), want 5", body.Count, len(body.Designs))
	}
	if _, ok := body.Designs[0]["area_mm2"]; !ok {
		t.Errorf("design row missing area: %v", body.Designs[0])
	}

	bad, err := http.Get(ts.URL + "/v1/designs?max=zero")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad max: status %d, want 400", bad.StatusCode)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"bad json", `{not json`, http.StatusBadRequest},
		{"unknown field", `{"wrkload":"fft"}`, http.StatusBadRequest},
		{"missing workload", `{}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"doom"}`, http.StatusNotFound},
		{"bad scale", `{"workload":"fft","scale":"huge"}`, http.StatusBadRequest},
		{"negative threads", `{"workload":"fft","threads":-1}`, http.StatusBadRequest},
		{"bad config", `{"workload":"fft","config":{"match":3}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/runs", tc.body)
			apiErr := errEnvelope(t, resp)
			if resp.StatusCode != tc.wantCode {
				t.Errorf("status %d, want %d (%+v)", resp.StatusCode, tc.wantCode, apiErr)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Errorf("error envelope incomplete: %+v", apiErr)
			}
			if tc.wantCode == http.StatusNotFound && apiErr.Code != "not_found" {
				t.Errorf("code %q, want not_found", apiErr.Code)
			}
		})
	}
}

func TestRunThenCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"workload":"fft","scale":"tiny"}`

	resp := post(t, ts.URL+"/v1/runs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp.StatusCode)
	}
	first := decode[struct {
		Key    string          `json:"key"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}](t, resp)
	if first.Cached {
		t.Error("first run reported cached")
	}
	var res runResult
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.AIPC <= 0 || res.App != "fft" || res.Err != "" {
		t.Errorf("unexpected result: %+v", res)
	}

	resp = post(t, ts.URL+"/v1/runs", body)
	second := decode[struct {
		Key    string          `json:"key"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}](t, resp)
	if !second.Cached {
		t.Error("second run not served from cache")
	}
	if string(second.Result) != string(first.Result) {
		t.Errorf("cached result differs:\nfirst  %s\nsecond %s", first.Result, second.Result)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"no suite or apps", `{}`, http.StatusBadRequest},
		{"unknown suite", `{"suite":"spec95"}`, http.StatusBadRequest},
		{"unknown app", `{"apps":["doom"]}`, http.StatusNotFound},
		{"bad threads", `{"suite":"mediabench","thread_counts":[0]}`, http.StatusBadRequest},
		{"bad scale", `{"suite":"mediabench","scale":"huge"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/sweeps", tc.body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
		})
	}
}

// pollJob fetches the job until it reaches a terminal state.
func pollJob(t *testing.T, url, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := decode[map[string]any](t, resp)
		switch body["state"] {
		case stateDone, stateFailed, stateCancelled:
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %v", id, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	app := workload.BySuite(workload.Media)[0].Name
	resp := post(t, ts.URL+"/v1/sweeps", fmt.Sprintf(`{"apps":[%q],"max_points":2}`, app))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	accepted := decode[struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}](t, resp)
	if accepted.ID == "" || accepted.Cells != 2 {
		t.Fatalf("accepted = %+v", accepted)
	}

	body := pollJob(t, ts.URL, accepted.ID)
	if body["state"] != stateDone {
		t.Fatalf("job state %v: %v", body["state"], body)
	}
	prog := body["progress"].(map[string]any)
	if prog["done"].(float64) != 2 || prog["total"].(float64) != 2 {
		t.Errorf("progress %v, want 2/2", prog)
	}
	result := body["result"].(map[string]any)
	designs := result["designs"].([]any)
	if len(designs) != 2 {
		t.Errorf("%d design rows, want 2", len(designs))
	}
	if frontier := result["frontier"].([]any); len(frontier) == 0 {
		t.Error("empty frontier")
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE: status %d, want 404", del.StatusCode)
	}
}

func TestJobCancel(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/sweeps", `{"suite":"mediabench","scale":"medium","max_points":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	accepted := decode[struct {
		ID string `json:"id"`
	}](t, resp)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+accepted.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusAccepted {
		t.Errorf("DELETE: status %d, want 202", del.StatusCode)
	}
	body := pollJob(t, ts.URL, accepted.ID)
	// The cancel races the sweep: cancelled normally, done if the sweep
	// won. Either is a terminal, consistent state.
	if s := body["state"]; s != stateCancelled && s != stateDone {
		t.Errorf("state %v after cancel, want cancelled or done", s)
	}
}

// TestQueueFullBackpressure fills the worker pool and the admission queue
// with parked jobs (the deterministic test hook), then proves a new run
// is rejected with 429 + Retry-After rather than queued without bound.
func TestQueueFullBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, WithWorkers(1), WithQueueDepth(1))
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	srv.queue <- &job{block: release} // parked by the single worker
	srv.queue <- &job{block: release} // fills the depth-1 queue

	resp := post(t, ts.URL+"/v1/runs", `{"workload":"fft"}`)
	apiErr := errEnvelope(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", resp.StatusCode, apiErr)
	}
	if apiErr.Code != "queue_full" {
		t.Errorf("error code %q, want queue_full", apiErr.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}

	// Sweeps hit the same admission control.
	resp = post(t, ts.URL+"/v1/sweeps", `{"suite":"mediabench","max_points":1}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("sweep status %d, want 429", resp.StatusCode)
	}

	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, metricsResp)
	if !strings.Contains(text, "wsd_admission_rejected_total 2") {
		t.Errorf("metrics missing rejection count:\n%s", grepMetric(text, "wsd_admission_rejected"))
	}

	close(release)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// grepMetric extracts the lines mentioning a metric, for focused failure
// messages.
func grepMetric(text, name string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/runs", `{"workload":"fft"}`).Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text := readAll(t, resp)
	for _, want := range []string{
		`wsd_http_requests_total{path="POST /v1/runs",method="POST",code="200"} 1`,
		`wsd_http_request_duration_seconds_count{path="POST /v1/runs"} 1`,
		`wsd_sims_total{outcome="completed"} 1`,
		"wsd_queue_depth",
		"wsd_queue_capacity",
		"wsd_workers_busy",
		"wsd_cache_hit_ratio",
		"wsd_cache_entries 1",
		"wsd_singleflight_shared_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q; related lines:\n%s", want, grepMetric(text, strings.SplitN(want, "{", 2)[0]))
		}
	}
}

func TestOptionValidation(t *testing.T) {
	cases := map[string][]Option{
		"zero workers":    {WithWorkers(0)},
		"zero queue":      {WithQueueDepth(0)},
		"zero timeout":    {WithRequestTimeout(0)},
		"nil cache":       {WithCache(nil)},
		"zero cacheLimit": {WithCacheLimit(0)},
		"empty journal":   {WithJournal("", false)},
	}
	for name, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
