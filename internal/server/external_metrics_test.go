package server

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// TestExternalCounterOnMetrics: a counter registered by the embedding
// process (the shape cmd/wsd uses for wsd_shipper_retries_total) renders
// on /metrics and is sampled live at scrape time.
func TestExternalCounterOnMetrics(t *testing.T) {
	var retries atomic.Uint64
	_, ts := newTestServer(t, WithExternalCounter(
		"wsd_shipper_retries_total",
		"Journal ship attempts that failed and were rescheduled with backoff.",
		retries.Load))

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		return readAll(t, resp)
	}
	if text := scrape(); !strings.Contains(text, "wsd_shipper_retries_total 0") {
		t.Errorf("metrics missing zero-valued external counter:\n%s", grepMetric(text, "wsd_shipper"))
	}
	retries.Add(3)
	text := scrape()
	if !strings.Contains(text, "wsd_shipper_retries_total 3") {
		t.Errorf("external counter not sampled live:\n%s", grepMetric(text, "wsd_shipper"))
	}
	if !strings.Contains(text, "# TYPE wsd_shipper_retries_total counter") {
		t.Errorf("external counter missing TYPE line:\n%s", grepMetric(text, "wsd_shipper"))
	}
}

// TestExternalCounterValidation: a nameless or samplerless registration
// is rejected eagerly.
func TestExternalCounterValidation(t *testing.T) {
	if _, err := New(WithExternalCounter("", "help", func() uint64 { return 0 })); err == nil {
		t.Errorf("nameless external counter accepted")
	}
	if _, err := New(WithExternalCounter("x_total", "help", nil)); err == nil {
		t.Errorf("samplerless external counter accepted")
	}
}
