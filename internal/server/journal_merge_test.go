package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"wavescalar/internal/cluster"
)

// TestClusterJournalMerge drives the worker→coordinator durability path
// end to end with the real shipper: a cell simulated only on a worker is
// shipped to the coordinator's /v1/cluster/journal, lands in its cache
// (served cached:true) and its own journal, and a full re-ship after a
// lost offset merges zero new records.
func TestClusterJournalMerge(t *testing.T) {
	dir := t.TempDir()
	workerJournal := filepath.Join(dir, "worker.jsonl")
	body := `{"workload":"fft","scale":"tiny","threads":1,"config":{"clusters":2,"virt":32,"match":32}}`

	// A worker-local run: this cell exists only in the worker's journal.
	srvW, err := New(WithWorkers(2), WithJournal(workerJournal, false))
	if err != nil {
		t.Fatal(err)
	}
	tsW := httptest.NewServer(srvW)
	runResp := decode[runResponse](t, post(t, tsW.URL+"/v1/runs", body))
	tsW.Close()
	if err := srvW.Close(); err != nil {
		t.Fatal(err)
	}

	srvC, err := New(WithRole(RoleCoordinator),
		WithJournal(filepath.Join(dir, "coord.jsonl"), false))
	if err != nil {
		t.Fatal(err)
	}
	tsC := httptest.NewServer(srvC)
	defer tsC.Close()
	defer srvC.Close()

	sh := &cluster.Shipper{Coordinator: tsC.URL, JournalPath: workerJournal,
		Logf: t.Logf}
	n, err := sh.ShipOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("shipped %d records, want >= 1", n)
	}

	// The coordinator now serves the worker's measurement from cache.
	got := decode[runResponse](t, post(t, tsC.URL+"/v1/runs", body))
	if !got.Cached {
		t.Error("coordinator simulated a cell the worker already shipped")
	}
	if got.Key != runResp.Key || got.Result != runResp.Result {
		t.Errorf("coordinator result diverges: %+v vs worker %+v", got, runResp)
	}

	// A restarted shipper (offset lost) re-ships everything; merging is
	// idempotent, so the coordinator's merged counter must not move.
	merged := scrapeMetric(t, tsC.URL, "wsd_cluster_journal_merged_total")
	fresh := &cluster.Shipper{Coordinator: tsC.URL, JournalPath: workerJournal,
		Logf: t.Logf}
	if _, err := fresh.ShipOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if again := scrapeMetric(t, tsC.URL, "wsd_cluster_journal_merged_total"); again != merged {
		t.Errorf("re-ship merged new records: counter %s -> %s", merged, again)
	}
}

// scrapeMetric returns the value token of one metric line.
func scrapeMetric(t *testing.T, baseURL, name string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return ""
}
