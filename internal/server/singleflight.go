package server

import (
	"sync"

	"wavescalar/internal/explore"
)

// flightGroup deduplicates concurrent identical run requests: the first
// request for a cache key becomes the leader and owns the queued
// simulation; every request for the same key that arrives while it is in
// flight becomes a follower and waits on the same call. Combined with the
// content-addressed cache this gives the daemon its cost model — N
// identical concurrent requests cost one simulation, and N identical
// sequential requests cost one simulation ever.
//
// Unlike x/sync/singleflight (not vendored; the repo is dependency-free),
// completion is decoupled from execution: the leader's HTTP handler
// enqueues a job and the worker pool completes the call, so a leader
// whose client disconnects does not abandon its followers.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight simulation shared by its waiters.
type flightCall struct {
	done chan struct{} // closed on completion
	cell explore.Cell
	err  error // non-nil only for non-deterministic outcomes (shutdown)
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the call for key, creating it if absent. leader reports
// whether the caller created the call (and so must arrange its execution
// or abandon it).
func (g *flightGroup) join(key string) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete resolves the call and wakes every waiter. The call is removed
// from the group first, so requests arriving after completion start fresh
// (and will hit the result cache instead).
func (g *flightGroup) complete(key string, c *flightCall, cell explore.Cell, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.cell, c.err = cell, err
	close(c.done)
}

// abandon removes a call that never got queued (admission failure), so
// the next request for the key can lead again. Waiters that joined in the
// window are woken with err.
func (g *flightGroup) abandon(key string, c *flightCall, err error) {
	g.complete(key, c, explore.Cell{}, err)
}
