// Package server turns the wavescalar simulator into a long-running
// simulation-as-a-service daemon: an HTTP/JSON API over the exploration
// engine, built for many concurrent clients evaluating design points
// against a shared, content-addressed result store.
//
// The serving model, in one pass through a request:
//
//   - POST /v1/runs resolves the request to a simulator configuration and
//     computes internal/explore's content-addressed cell key. A cache hit
//     (in-memory, or replayed from the JSONL journal at startup) answers
//     with zero simulation.
//   - On a miss, the request joins a singleflight group keyed by the same
//     key: one leader enqueues a job, every identical concurrent request
//     waits on the leader's result, so N identical in-flight requests
//     cost exactly one simulation.
//   - The admission queue is bounded. When it is full the leader is
//     rejected with 429 and a Retry-After hint — backpressure, not
//     collapse: latency degrades before throughput does.
//   - A fixed worker pool drains the queue. Workers execute runs through
//     Explorer.RunOne (cache + journal write-through) and sweeps through
//     Explorer.SweepWith, both under the server's base context so a
//     client disconnect never kills a simulation other waiters share.
//   - Shutdown stops admissions (new work gets 503), rejects queued jobs
//     that have not started, lets in-flight simulations drain (escalating
//     to context cancellation — sim.Processor.RunContext — if the drain
//     deadline passes), then flushes and closes the journal.
//
// GET /metrics exposes the whole pipeline in Prometheus text format:
// request counts and latencies, queue depth, worker utilization, cache
// hit ratio, and simulations completed/failed/cancelled.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wavescalar/internal/cluster"
	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/scenario"
)

// Role selects how a daemon participates in the distributed sweep
// fabric. Every role serves the full single-node API; the roles differ
// only in where sweep cells execute.
type Role string

const (
	// RoleSingle (the default) simulates everything locally.
	RoleSingle Role = "single"
	// RoleCoordinator shards sweep cells across registered workers via a
	// consistent hash ring, streams results into its own cache/journal,
	// and serves the /v1/cluster registration endpoints. With no workers
	// registered it degrades to RoleSingle behavior.
	RoleCoordinator Role = "coordinator"
	// RoleWorker executes cells on behalf of a coordinator via
	// POST /v1/cluster/execute (an Agent keeps it registered; see
	// cluster.Agent). It still serves local runs and sweeps.
	RoleWorker Role = "worker"
)

// ParseRole maps the -role flag values to Roles.
func ParseRole(s string) (Role, error) {
	switch Role(s) {
	case RoleSingle, RoleCoordinator, RoleWorker:
		return Role(s), nil
	}
	return "", fmt.Errorf("%w: unknown role %q (single, coordinator, worker)", design.ErrBadOptions, s)
}

// Option configures New (functional options, mirroring explore.New).
type Option func(*Server) error

// WithWorkers sets the worker-pool size (default GOMAXPROCS). Each run
// job occupies one worker for one simulation; each sweep job occupies one
// worker and fans out internally to the explorer's parallelism.
func WithWorkers(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("%w: workers %d must be positive", design.ErrBadOptions, n)
		}
		s.workers = n
		return nil
	}
}

// WithQueueDepth bounds the admission queue (default 64). A full queue
// rejects new jobs with 429 — the backpressure that keeps an overloaded
// daemon serving instead of accumulating unbounded work.
func WithQueueDepth(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("%w: queue depth %d must be positive", design.ErrBadOptions, n)
		}
		s.queueDepth = n
		return nil
	}
}

// WithRequestTimeout bounds how long a synchronous run request waits for
// its simulation (default 60s). The simulation itself continues and is
// cached, so a timed-out client that retries gets a cache hit.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("%w: request timeout %v must be positive", design.ErrBadOptions, d)
		}
		s.requestTimeout = d
		return nil
	}
}

// WithCache shares a result cache with other explorers or servers
// (default: a fresh private cache).
func WithCache(c *explore.Cache) Option {
	return func(s *Server) error {
		if c == nil {
			return fmt.Errorf("%w: nil cache", design.ErrBadOptions)
		}
		s.cache = c
		return nil
	}
}

// WithCacheLimit caps the result cache at n cells with LRU eviction —
// the memory bound a long-running daemon wants (the CLIs default to
// unlimited).
func WithCacheLimit(n int) Option {
	return func(s *Server) error {
		s.exploreOpts = append(s.exploreOpts, explore.WithCacheLimit(n))
		return nil
	}
}

// WithJournal backs the cache with a JSONL journal. With resume set,
// existing records are replayed at startup — a warm restart serves every
// previously simulated request with zero simulations.
func WithJournal(path string, resume bool) Option {
	return func(s *Server) error {
		s.exploreOpts = append(s.exploreOpts, explore.WithJournal(path, resume))
		return nil
	}
}

// WithParallelism sets how many simulations a sweep job runs concurrently
// (default GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(s *Server) error {
		s.exploreOpts = append(s.exploreOpts, explore.WithParallelism(n))
		return nil
	}
}

// WithBatch sets how many same-workload design points a sweep batches
// through one simulator pass (default 8; 0 or 1 disables batching).
// Batching never changes results — cells, cache keys, and journal
// records are byte-identical to the unbatched path.
func WithBatch(k int) Option {
	return func(s *Server) error {
		s.exploreOpts = append(s.exploreOpts, explore.WithBatch(k))
		return nil
	}
}

// WithRole selects the daemon's fabric role (default RoleSingle).
func WithRole(r Role) Option {
	return func(s *Server) error {
		if _, err := ParseRole(string(r)); err != nil {
			return err
		}
		s.role = r
		return nil
	}
}

// WithClusterOptions tunes the coordinator's lease, retry, and dispatch
// behavior (only meaningful with WithRole(RoleCoordinator); zero fields
// keep the cluster package defaults).
func WithClusterOptions(opt cluster.Options) Option {
	return func(s *Server) error {
		s.clusterOpt = opt
		return nil
	}
}

// WithTenantQuota caps each tenant (the X-Tenant request header;
// "default" when absent) at n queued-or-running jobs. Over-quota
// admissions are rejected with 429 + Retry-After, the same backpressure
// shape as a full queue — so one tenant's sweep storm cannot starve the
// fabric for everyone else. n = 0 (the default) disables quotas.
func WithTenantQuota(n int) Option {
	return func(s *Server) error {
		if n < 0 {
			return fmt.Errorf("%w: tenant quota %d must be non-negative", design.ErrBadOptions, n)
		}
		s.quotas = newTenantQuotas(n)
		return nil
	}
}

// externalCounter is a process-level counter owned outside the server
// (e.g. the journal shipper living in cmd/wsd) that /metrics should
// render alongside the daemon's own.
type externalCounter struct {
	name, help string
	value      func() uint64
}

// WithExternalCounter exposes a counter owned by the embedding process
// on /metrics: fn is sampled at scrape time. The name must be a valid
// Prometheus metric name; counters render in registration order.
func WithExternalCounter(name, help string, fn func() uint64) Option {
	return func(s *Server) error {
		if name == "" || fn == nil {
			return fmt.Errorf("%w: external counter needs a name and a sampler", design.ErrBadOptions)
		}
		s.external = append(s.external, externalCounter{name: name, help: help, value: fn})
		return nil
	}
}

// WithRetryAfter sets the base Retry-After hint on 429 responses
// (default 2s). The served value is jittered ±20% so synchronized
// clients don't retry in lockstep against the coordinator.
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("%w: retry-after %v must be positive", design.ErrBadOptions, d)
		}
		s.retryAfter = d
		return nil
	}
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
// Construct with New, serve it with net/http, then Shutdown to drain.
type Server struct {
	workers        int
	queueDepth     int
	requestTimeout time.Duration
	retryAfter     time.Duration
	cache          *explore.Cache
	exploreOpts    []explore.Option
	role           Role
	clusterOpt     cluster.Options
	quotas         *tenantQuotas
	external       []externalCounter

	// Surrogate serving configuration (WithSurrogate*); sur is nil when
	// /v1/predict should always fall back.
	surModelPath string
	surTrain     bool
	surThreshold float64
	sur          *surrogateState

	// Scenario-store persistence (WithScenarioStore).
	scnPath string
	scnFile *os.File

	exp     *explore.Explorer
	coord   *cluster.Coordinator // non-nil only for RoleCoordinator
	mux     *http.ServeMux
	metrics *metrics
	flight  *flightGroup
	jobs    *registry
	queue   chan *job

	// The content-addressed scenario store behind POST /v1/scenarios:
	// digest (scenario.Digest) → validated document.
	scnMu     sync.Mutex
	scenarios map[string]*scenario.Scenario

	admitMu sync.Mutex
	closing bool

	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup
	busy       atomic.Int64
	reqSeq     atomic.Uint64 // request ids for panic correlation
	start      time.Time
}

// New builds and starts a server: options are validated eagerly (errors
// wrap design.ErrBadOptions), the journal (if any) is opened and
// replayed, and the worker pool is running on return.
func New(opts ...Option) (*Server, error) {
	s := &Server{
		workers:        runtime.GOMAXPROCS(0),
		queueDepth:     64,
		requestTimeout: 60 * time.Second,
		retryAfter:     2 * time.Second,
		role:           RoleSingle,
		metrics:        newMetrics(),
		flight:         newFlightGroup(),
		jobs:           newRegistry(),
		scenarios:      make(map[string]*scenario.Scenario),
		start:          time.Now(),
	}
	for _, o := range opts {
		if err := o(s); err != nil {
			return nil, err
		}
	}
	if s.cache == nil {
		s.cache = explore.NewCache()
	}
	if s.quotas == nil {
		s.quotas = newTenantQuotas(0)
	}
	exploreOpts := append([]explore.Option{explore.WithCache(s.cache)}, s.exploreOpts...)
	if s.role == RoleCoordinator {
		// The coordinator's exploration engine tries the fabric first on
		// every sweep cache miss and falls back to local simulation, so
		// an empty or degraded fabric still completes every sweep.
		s.coord = cluster.NewCoordinator(s.clusterOpt)
		exploreOpts = append(exploreOpts, explore.WithRunner(s.coord.RunCell))
	}
	exp, err := explore.New(exploreOpts...)
	if err != nil {
		return nil, err
	}
	s.exp = exp
	// The surrogate trains (or loads) after the journal replay, so a warm
	// restart's cells are its training set.
	s.sur, err = s.newSurrogateState()
	if err != nil {
		exp.Close()
		return nil, err
	}
	if err := s.openScenarioStore(); err != nil {
		exp.Close()
		return nil, err
	}
	if s.coord != nil {
		s.coord.Start()
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.queue = make(chan *job, s.queueDepth)
	s.mux = s.routes()
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Resumed reports how many journal records a warm restart replayed.
func (s *Server) Resumed() int { return s.exp.Resumed() }

// Busy reports how many pool workers are executing a job right now — the
// fabric agent samples it for heartbeats so the coordinator can see load.
func (s *Server) Busy() int { return int(s.busy.Load()) }

// Role reports the daemon's fabric role.
func (s *Server) Role() Role { return s.role }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// isClosing reports whether admissions have stopped.
func (s *Server) isClosing() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.closing
}

// enqueue admits a job to the bounded queue, or fails immediately with
// errQueueFull (backpressure) or errShuttingDown (drain in progress).
func (s *Server) enqueue(jb *job) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.closing {
		return errShuttingDown
	}
	select {
	case s.queue <- jb:
		return nil
	default:
		return errQueueFull
	}
}

// worker drains the queue until Shutdown closes it. Jobs popped after
// admissions stop are rejected, not run: shutdown drains in-flight work
// but does not start more.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		if jb.block != nil { // test hook: park deterministically
			<-jb.block
			continue
		}
		if s.isClosing() {
			s.rejectQueued(jb)
			continue
		}
		s.busy.Add(1)
		s.execute(jb)
		s.busy.Add(-1)
	}
}

// rejectQueued resolves a job that shutdown overtook before it started.
func (s *Server) rejectQueued(jb *job) {
	defer s.quotas.release(jb.tenant)
	switch jb.kind {
	case "run":
		s.metrics.add(&s.metrics.simsCancelled, 1)
		s.flight.complete(jb.key, jb.call, explore.Cell{}, errShuttingDown)
	case "scenario":
		s.metrics.add(&s.metrics.simsCancelled, 1)
		jb.scn.err = errShuttingDown
		close(jb.scn.done)
	case "sweep":
		s.metrics.add(&s.metrics.jobsCancelled, 1)
		jb.finish(nil, errShuttingDown, true)
	}
}

// execute runs one job on the server's base context: request contexts
// bound only the wait, never the simulation, so a disconnecting client
// cannot kill work that concurrent identical requests (or the cache)
// will use.
func (s *Server) execute(jb *job) {
	defer s.quotas.release(jb.tenant)
	switch jb.kind {
	case "run":
		spec := jb.run
		cell, cached, err := s.exp.RunOne(s.baseCtx, spec.cfg, spec.w, spec.scale, spec.threadCounts)
		if cell.Key == "" {
			// Cancelled mid-simulation (shutdown drain deadline).
			s.metrics.add(&s.metrics.simsCancelled, 1)
			s.flight.complete(jb.key, jb.call, explore.Cell{}, errShuttingDown)
			return
		}
		if err != nil {
			// The cell is valid but the journal append failed; serve the
			// result and surface the durability problem as a metric.
			s.metrics.add(&s.metrics.journalErrors, 1)
		}
		if !cached {
			if !spec.cfg.Fault.Empty() {
				s.metrics.add(&s.metrics.faultSims, 1)
			}
			if cell.Err != "" {
				s.metrics.add(&s.metrics.simsFailed, 1)
			} else {
				s.metrics.add(&s.metrics.simsCompleted, 1)
			}
		}
		// A real measurement of a cell the surrogate once answered closes
		// the loop on the model's observed error.
		s.sur.observe(jb.key, cell)
		s.flight.complete(jb.key, jb.call, cell, nil)

	case "scenario":
		// Phases run in order through the same RunOne pipeline as plain
		// runs: cache fast path, journal write-through, shared metrics.
		// Per-phase dedup against concurrent identical runs comes from the
		// cache (a phase cell simulated by anyone is a hit for everyone).
		spec := jb.scn
		spec.results = make([]explore.Cell, len(spec.phases))
		spec.cached = make([]bool, len(spec.phases))
		for i, ph := range spec.phases {
			cell, cached, err := s.exp.RunOne(s.baseCtx, ph.cfg, ph.w, ph.scale, ph.threads)
			if cell.Key == "" {
				s.metrics.add(&s.metrics.simsCancelled, 1)
				spec.err = errShuttingDown
				break
			}
			if err != nil {
				s.metrics.add(&s.metrics.journalErrors, 1)
			}
			if !cached {
				if !ph.cfg.Fault.Empty() {
					s.metrics.add(&s.metrics.faultSims, 1)
				}
				if cell.Err != "" {
					s.metrics.add(&s.metrics.simsFailed, 1)
				} else {
					s.metrics.add(&s.metrics.simsCompleted, 1)
				}
			}
			spec.results[i], spec.cached[i] = cell, cached
		}
		close(spec.done)

	case "sweep":
		jb.setState(stateRunning)
		spec := jb.sweep
		results, err := s.exp.SweepWith(jb.ctx, spec.points, spec.apps, explore.SweepSpec{
			Scale:        spec.scale,
			ThreadCounts: spec.threadCounts,
			Configure:    spec.configure,
			Progress:     jb.setProgress,
		})
		cancelled := jb.ctx.Err() != nil
		jb.finish(results, err, cancelled)
		_, p, _, _ := jb.snapshot()
		s.metrics.add(&s.metrics.simsCompleted, uint64(p.Simulated-p.Failed))
		s.metrics.add(&s.metrics.simsFailed, uint64(p.Failed))
		switch {
		case cancelled:
			s.metrics.add(&s.metrics.jobsCancelled, 1)
		case err != nil:
			s.metrics.add(&s.metrics.jobsFailed, 1)
		default:
			s.metrics.add(&s.metrics.jobsCompleted, 1)
		}
	}
}

// Shutdown drains the server gracefully: admissions stop immediately (new
// requests get 503, queued-but-unstarted jobs are rejected), in-flight
// simulations run to completion and their results are cached, journaled
// and delivered to waiting clients. If ctx expires first, the base
// context is cancelled, aborting the remaining simulations within a few
// thousand simulated cycles. The journal is flushed and closed last, so
// every completed cell survives the restart.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.queue)
	}
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelBase()
		<-done
	}
	s.cancelBase()
	if s.coord != nil {
		s.coord.Stop()
	}
	err := s.exp.Close()
	if s.scnFile != nil {
		if cerr := s.scnFile.Close(); err == nil {
			err = cerr
		}
		s.scnFile = nil
	}
	return err
}

// Close shuts down immediately: in-flight simulations are cancelled, not
// drained.
func (s *Server) Close() error {
	s.cancelBase()
	return s.Shutdown(context.Background())
}
