package server

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPanicRecovery proves a panicking handler is converted into a 500
// carrying a request id, logged with a stack trace, counted in
// wsd_panics_total — and that the daemon keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	srv, ts := newTestServer(t)
	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	h := srv.instrument("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "internal error (request") {
		t.Errorf("500 body missing request id: %q", body)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "panic serving GET /boom") || !strings.Contains(logged, "goroutine") {
		t.Errorf("panic log missing route or stack trace: %q", logged)
	}

	// A handler that panics after starting the response must not have a
	// 500 spliced into its half-written body.
	h = srv.instrument("GET /boom2", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "partial")
		panic("late boom")
	})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom2", nil))
	if body := rec.Body.String(); strings.Contains(body, "internal error") {
		t.Errorf("error payload appended to half-written response: %q", body)
	}

	// The daemon survived both panics.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mresp)
	if !strings.Contains(text, "wsd_panics_total 2") {
		t.Errorf("metrics missing panic count:\n%s", grepMetric(text, "wsd_panics_total"))
	}
	if !strings.Contains(text, `wsd_http_requests_total{path="GET /boom",method="GET",code="500"} 1`) {
		t.Errorf("panicked request not observed as 500:\n%s", grepMetric(text, "GET /boom"))
	}
}

func TestRunFaultValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"rate out of range", `{"workload":"fft","fault":{"mem_drop_rate":1.5}}`},
		{"target outside machine", `{"workload":"fft","fault":{"events":[{"cycle":1,"kind":"kill_pe","pe":99}]}}`},
		{"unknown event kind", `{"workload":"fft","fault":{"events":[{"cycle":1,"kind":"explode"}]}}`},
		{"unknown fault field", `{"workload":"fft","fault":{"typo_rate":0.5}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/runs", tc.body)
			apiErr := errEnvelope(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%+v)", resp.StatusCode, apiErr)
			}
			if apiErr.Code != "bad_request" || apiErr.Message == "" {
				t.Errorf("error envelope incomplete: %+v", apiErr)
			}
		})
	}
}

// TestRunWithFaultScript drives a fault-injected run end to end: the
// script changes the cell key (so faulty results never collide with
// clean ones), the simulation degrades gracefully instead of failing,
// repeats are cache hits, and the work is counted in
// wsd_fault_sims_total.
func TestRunWithFaultScript(t *testing.T) {
	_, ts := newTestServer(t)
	clean := decode[runResponse](t, post(t, ts.URL+"/v1/runs", `{"workload":"fft"}`))

	faultBody := `{"workload":"fft","fault":{"events":[{"cycle":100,"kind":"kill_pe","cluster":0,"domain":1,"pe":3}]}}`
	resp := post(t, ts.URL+"/v1/runs", faultBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault run: status %d", resp.StatusCode)
	}
	faulty := decode[runResponse](t, resp)
	if faulty.Cached {
		t.Error("first fault run reported cached")
	}
	if faulty.Key == clean.Key {
		t.Error("fault script did not change the cell key")
	}
	if faulty.Result.Err != "" || faulty.Result.AIPC <= 0 {
		t.Errorf("fault run did not complete gracefully: %+v", faulty.Result)
	}

	again := decode[runResponse](t, post(t, ts.URL+"/v1/runs", faultBody))
	if !again.Cached {
		t.Error("repeated fault run not served from cache")
	}
	if again.Result != faulty.Result {
		t.Errorf("cached fault result differs:\nfirst  %+v\nsecond %+v", faulty.Result, again.Result)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mresp)
	if !strings.Contains(text, "wsd_fault_sims_total 1") {
		t.Errorf("metrics missing fault sim count:\n%s", grepMetric(text, "wsd_fault_sims_total"))
	}
}
