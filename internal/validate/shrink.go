package validate

import "wavescalar/internal/fault"

// Shrink greedily minimizes a failing case: it tries simpler candidates
// (fewer threads, smaller scale, smaller machine, shorter fault script)
// and keeps any candidate that still fails with the same kind, repeating
// until a full pass accepts nothing or the budget of Check invocations
// runs out. The result is the smallest case this harness knows how to
// reach — typically a one-cluster, one-thread, few-iteration repro that
// simulates in milliseconds.
//
// Candidates that fail differently (another kind, or an infrastructure
// error such as a kill event now targeting a PE the smaller machine does
// not have) are rejected: shrinking narrows one bug, it never wanders to
// a different one.
func (ck *Checker) Shrink(c Case, kind string, budget int) Case {
	if budget <= 0 {
		budget = 150
	}
	stillFails := func(cand Case) bool {
		if budget <= 0 {
			return false
		}
		budget--
		f, err := ck.Check(cand)
		return err == nil && f != nil && f.Kind == kind
	}
	for {
		improved := false
		for _, cand := range shrinkCandidates(c) {
			if stillFails(cand) {
				c = cand
				improved = true
				break // restart candidate generation from the smaller case
			}
		}
		if !improved || budget <= 0 {
			return c
		}
	}
}

// shrinkCandidates proposes strictly simpler variants of c, cheapest
// wins first: dropping the fault script and threads prunes the most
// simulation time, machine shrinking comes last.
func shrinkCandidates(c Case) []Case {
	var out []Case
	add := func(mut func(*Case)) {
		cand := c
		if cand.Fault != nil {
			s := *cand.Fault
			cand.Fault = &s
		}
		mut(&cand)
		out = append(out, cand)
	}

	if !c.Fault.Empty() {
		add(func(n *Case) { n.Fault = nil })
		if len(c.Fault.Events) > 1 {
			add(func(n *Case) { n.Fault.Events = append([]fault.Event(nil), c.Fault.Events[:len(c.Fault.Events)/2]...) })
			add(func(n *Case) { n.Fault.Events = append([]fault.Event(nil), c.Fault.Events[len(c.Fault.Events)/2:]...) })
		} else if len(c.Fault.Events) == 1 {
			add(func(n *Case) { n.Fault.Events = nil })
		}
		for _, zero := range []func(*Case){
			func(n *Case) { n.Fault.LinkFlipRate = 0 },
			func(n *Case) { n.Fault.MemDropRate = 0 },
			func(n *Case) { n.Fault.MemDelayRate = 0 },
			func(n *Case) { n.Fault.SBDelayRate = 0 },
		} {
			cand := c
			s := *c.Fault
			cand.Fault = &s
			zero(&cand)
			if cand.Fault.Digest() != c.Fault.Digest() {
				out = append(out, cand)
			}
		}
	}
	if c.Threads > 1 {
		add(func(n *Case) { n.Threads = 1 })
		if c.Threads > 2 {
			add(func(n *Case) { n.Threads = c.Threads / 2 })
		}
	}
	if c.Iters > 2 {
		add(func(n *Case) { n.Iters = max(2, c.Iters/2) })
	}
	if c.Footprint > 256 {
		add(func(n *Case) { n.Footprint = max(256, c.Footprint/2) })
	}
	if c.Arch.Clusters > 1 {
		add(func(n *Case) { n.Arch.Clusters = 1 })
	}
	if c.Arch.Domains > 1 {
		add(func(n *Case) { n.Arch.Domains = c.Arch.Domains / 2 })
	}
	if c.Arch.PEs > 2 {
		add(func(n *Case) { n.Arch.PEs = max(2, c.Arch.PEs/2) })
	}
	if c.Arch.Virt > 8 {
		add(func(n *Case) { n.Arch.Virt = c.Arch.Virt / 2 })
	}
	if c.Arch.Match > 4 {
		add(func(n *Case) { n.Arch.Match = c.Arch.Match / 2 })
	}
	if c.Arch.L1KB > 1 {
		add(func(n *Case) { n.Arch.L1KB = c.Arch.L1KB / 2 })
	}
	if c.Arch.L2MB > 0 {
		add(func(n *Case) { n.Arch.L2MB = 0 })
	}
	if c.K > 1 {
		add(func(n *Case) { n.K = c.K / 2 })
	}
	return out
}
