package validate

import (
	"context"
	"fmt"
	"reflect"

	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// checkCache verifies the caching invariant the whole serving stack
// rests on: a cache hit must equal a recompute. The case runs three
// times through the explore engine — twice on one explorer (the second
// must be a pure hit returning the identical cell) and once on a fresh
// explorer (an independent recompute that must reproduce the cell
// field-for-field). Any difference means the content-addressed key is
// missing an input or the simulator broke determinism across processes.
//
// The explore engine drives the real simulator directly, so this variant
// costs two simulations and ignores the RunSim hook.
func (ck *Checker) checkCache(c Case, cfg sim.Config, threads int) (*Failure, error) {
	w, err := workload.ByName(c.Workload)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	counts := []int{threads}

	first, err := explore.New()
	if err != nil {
		return nil, err
	}
	cell1, cached1, err := first.RunOne(ctx, cfg, w, c.Scale(), counts)
	ck.Sims++
	if err != nil {
		return nil, fmt.Errorf("validate: cache check first run: %w", err)
	}
	if cached1 {
		return nil, fmt.Errorf("validate: cache check: first run unexpectedly cached")
	}
	cell2, cached2, err := first.RunOne(ctx, cfg, w, c.Scale(), counts)
	if err != nil {
		return nil, fmt.Errorf("validate: cache check hit: %w", err)
	}
	if !cached2 {
		return &Failure{Case: c, Kind: KindCacheDiverged,
			Detail: "second identical run missed the cache"}, nil
	}
	if !reflect.DeepEqual(cell1, cell2) {
		return &Failure{Case: c, Kind: KindCacheDiverged,
			Detail: fmt.Sprintf("cache hit differs from the run that filled it: %+v vs %+v", cell1, cell2)}, nil
	}

	fresh, err := explore.New()
	if err != nil {
		return nil, err
	}
	cell3, _, err := fresh.RunOne(ctx, cfg, w, c.Scale(), counts)
	ck.Sims++
	if err != nil {
		return nil, fmt.Errorf("validate: cache check recompute: %w", err)
	}
	if !reflect.DeepEqual(cell1, cell3) {
		return &Failure{Case: c, Kind: KindCacheDiverged,
			Detail: fmt.Sprintf("recompute differs from cached cell: %+v vs %+v", cell1, cell3)}, nil
	}
	return nil, nil
}
