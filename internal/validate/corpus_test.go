package validate

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// corpusDir is the checked-in witness corpus the regression suite
// replays (see TestCorpusReplay).
var corpusDir = filepath.Join("..", "..", "testdata", "validate_corpus")

func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := GenerateCase(CaseSeed(1, 0))
	f := &Failure{Case: c, Kind: KindHaltDiverged, Detail: "thread 0 halt value: sim 3, ref 2", Repro: CaseToken(c)}

	path, err := ExportFailure(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, KindHaltDiverged+"-") || !strings.HasSuffix(base, ".json") {
		t.Errorf("witness filename %q, want %s-<hash>.json", base, KindHaltDiverged)
	}
	// Content-addressed: re-exporting the same witness is idempotent.
	again, err := ExportFailure(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if again != path {
		t.Errorf("re-export wrote %s, want %s", again, path)
	}

	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Schema != CorpusSchema || e.Kind != f.Kind || e.Detail != f.Detail || e.Token != f.Repro {
		t.Errorf("entry fields diverge from the exported failure: %+v", e)
	}
	got, err := ParseToken(e.Token)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("witness token decodes to a different case:\n%+v\n%+v", got, c)
	}

	// A failure with no token cannot be a witness.
	if _, err := ExportFailure(dir, &Failure{Case: c, Kind: KindHaltDiverged}); err == nil {
		t.Error("export without a repro token should fail")
	}
	// A missing directory is an empty corpus; a damaged entry is loud.
	if got, err := LoadCorpus(filepath.Join(dir, "nonexistent")); err != nil || len(got) != 0 {
		t.Errorf("missing dir: entries=%v err=%v, want empty and nil", got, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("corrupt corpus entry should fail the load")
	}
}

// TestCorpusReplay replays every checked-in witness against the real
// simulator. Each entry is the minimal shrunk case that once exposed a
// divergence; the real simulator must stay clean on all of them, and
// every token must still decode to its recorded case — if either stops
// holding, a fixed bug class is back or the token format broke.
func TestCorpusReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays full simulator runs")
	}
	entries, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in corpus is empty; see TestSeedCorpusWitnesses")
	}
	ck := &Checker{}
	for _, e := range entries {
		c, err := ParseToken(e.Token)
		if err != nil {
			t.Errorf("witness %s: token no longer parses: %v", e.Kind, err)
			continue
		}
		if !reflect.DeepEqual(c, e.Case) {
			t.Errorf("witness %s: token decodes to a different case than recorded:\ntoken: %+v\nfile:  %+v", e.Kind, c, e.Case)
		}
		f, err := ck.Check(c)
		if err != nil {
			t.Errorf("witness %s: no longer checkable: %v", e.Kind, err)
			continue
		}
		if f != nil {
			t.Errorf("witness %s reproduces a divergence on the real simulator: %s: %s\n%s",
				e.Kind, f.Kind, f.Detail, f.Case.Describe())
		}
	}
}

// TestSeedCorpusWitnesses regenerates the checked-in corpus from two
// injected simulator bugs — a cross-cluster halt corruption and a
// counter corruption only the batch invariant can see. Set
// WSVALIDATE_SEED_CORPUS=1 to run it; the exported witnesses are the
// authentic shrunk output of the fuzz loop, not hand-written cases.
func TestSeedCorpusWitnesses(t *testing.T) {
	if os.Getenv("WSVALIDATE_SEED_CORPUS") == "" {
		t.Skip("set WSVALIDATE_SEED_CORPUS=1 to regenerate testdata/validate_corpus")
	}
	export := func(hook RunSimFunc, wantKind string) {
		t.Helper()
		ck := &Checker{RunSim: hook}
		rep, err := ck.Fuzz(FuzzOptions{Seed: 1, Seeds: 40, SkipMonotone: true})
		if err != nil {
			t.Fatalf("fuzz: %v", err)
		}
		for _, f := range rep.Failures {
			if f.Kind == wantKind {
				path, err := ExportFailure(corpusDir, &f)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("exported %s", path)
				return
			}
		}
		t.Fatalf("injected bug for %s never caught in %d seeds", wantKind, rep.Checked)
	}
	// Witness 1: thread 0's halt value corrupted on multi-cluster
	// machines — the shape of a cross-cluster steering bug; caught by the
	// sim-vs-ref differential.
	export(func(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
		out, err := RealSim(cfg, inst, threads)
		if err == nil && out.Err == nil && cfg.Arch.Clusters >= 2 {
			out.HaltValues[0]++
		}
		return out, err
	}, KindHaltDiverged)
	// Witness 2: a Stats counter silently inflated — invisible to the
	// reference differential (which only checks architectural counts) and
	// to determinism (both runs inflate identically); only the batch
	// invariant, comparing against an independently built batch lane,
	// sees it.
	export(func(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
		out, err := RealSim(cfg, inst, threads)
		if err == nil && out.Err == nil {
			out.Stats.SpecFires++
		}
		return out, err
	}, KindBatchDiverged)
}
