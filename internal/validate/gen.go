package validate

import (
	"math/rand"

	"wavescalar/internal/area"
	"wavescalar/internal/fault"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// CaseSeed derives the per-case seed for index i of a fuzzing run rooted
// at root — the value a "s:<seed>" repro token carries, so one case
// replays without regenerating the whole run.
func CaseSeed(root uint64, i int) uint64 {
	return fault.Mix(root, 0xCA5E, uint64(i))
}

// GenerateCase draws one case from a seed: a machine inside (and a
// little beyond the edges of) the paper's design ranges, any workload
// the resolver accepts, a small scale, a thread count, and sometimes a
// fault script. The draw is a pure function of the seed — the contract
// that makes every failure replayable from one integer.
//
// Scales stay at or below workload.Tiny: the harness buys coverage with
// many small cases, not few large ones, and the shrinker's job is easier
// when the starting point is already small.
func GenerateCase(seed uint64) Case {
	rng := rand.New(rand.NewSource(int64(seed)))
	pick := func(vals ...int) int { return vals[rng.Intn(len(vals))] }
	c := Case{
		Seed: seed,
		Arch: area.Params{
			Clusters: pick(1, 1, 1, 2, 4),
			Domains:  pick(1, 2, 4),
			PEs:      pick(2, 4, 8),
			Virt:     pick(16, 32, 64, 128),
			Match:    pick(16, 32, 64, 128),
			L1KB:     pick(4, 8, 16),
			L2MB:     pick(0, 1),
		},
		K:         pick(1, 2, 4, 8),
		Workload:  workload.RandomName(rng),
		Iters:     pick(4, 8, 16, 24),
		Footprint: pick(512, 1024, 2048),
		Threads:   pick(1, 1, 2, 4),
	}
	// Two cases in five degrade under a random fault script; the rest
	// stay clean so the differential signal is not drowned in
	// fault-tolerance noise.
	if rng.Intn(5) < 2 {
		c.Fault = fault.RandomScript(sim.FaultShape(c.Config()), rng)
	}
	return c
}
