package validate

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"wavescalar/internal/area"
	"wavescalar/internal/design"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Trend drift gates: the harness recomputes the paper's headline trends
// (fig6 cross-suite AIPC and the area payoff of the bigger machine, fig7
// multi-cluster scaling, table4 matching-table tuning) from fresh sweeps
// at tiny scale and compares each scalar against a checked-in expectation
// with a per-figure tolerance. The gate catches the failure mode the
// differential fuzzer cannot: a change that keeps results correct but
// quietly shifts *performance* until the reproduction no longer shows
// the paper's trends.

// Schema identifiers for the drift report and the expectations file.
const (
	DriftSchema        = "wavescalar-validate-drift/v1"
	ExpectationsSchema = "wavescalar-validate-expectations/v1"
)

// TrendMetric is one recomputed scalar compared against its expectation.
type TrendMetric struct {
	Name   string  `json:"name"`
	Figure string  `json:"figure"`
	Value  float64 `json:"value"`
	// Expected and Tolerance come from the expectations file; Drift is
	// the relative deviation |value-expected| / max(|expected|, 1e-9).
	Expected  float64 `json:"expected"`
	Tolerance float64 `json:"tolerance"`
	Drift     float64 `json:"drift"`
	Pass      bool    `json:"pass"`
}

// DriftReport is the versioned output of `wsvalidate trends`. Like the
// fuzz report it carries no timestamps: identical code produces an
// identical report.
type DriftReport struct {
	Schema  string        `json:"schema"`
	Metrics []TrendMetric `json:"metrics"`
	// Unmatched lists expectation names the recomputation did not
	// produce (stale expectations fail the gate loudly, not silently).
	Unmatched []string `json:"unmatched,omitempty"`
	Pass      bool     `json:"pass"`
}

// Expectations is the checked-in file the drift gate compares against
// (results/validate_expectations.json).
type Expectations struct {
	Schema  string           `json:"schema"`
	Metrics []ExpectedMetric `json:"metrics"`
}

// ExpectedMetric pins one trend scalar. Tolerance is relative; 0 demands
// exact equality (integer metrics like k_opt).
type ExpectedMetric struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Tolerance float64 `json:"tolerance"`
}

// TrendValue is one recomputed scalar before expectation matching.
type TrendValue struct {
	Name   string  `json:"name"`
	Figure string  `json:"figure"`
	Value  float64 `json:"value"`
}

// trendArchSmall/Large are the two fig6 endpoints: a modest machine and
// the paper's baseline. At tiny scale with one thread the larger machine
// is a little *slower* per suite (work spreads across more PEs, costing
// bypass locality) — the gated trend is that this single-thread ratio
// stays put, not that it exceeds one; area pays off in the fig7
// multi-thread scaling metrics below.
var (
	trendArchSmall = area.Params{Clusters: 1, Domains: 2, PEs: 4, Virt: 32, Match: 32, L1KB: 8, L2MB: 0}
	trendArchLarge = sim.BaselineArch()
)

// trendApps picks two representatives per suite — enough to average out
// one kernel's quirks while keeping the gate fast.
var trendApps = map[string][]string{
	"spec2000":   {"gzip", "equake"},
	"mediabench": {"djpeg", "rawdaudio"},
	"splash2":    {"fft", "lu"},
}

// trendSuites fixes iteration order (map order would make the report
// nondeterministic).
var trendSuites = []string{"spec2000", "mediabench", "splash2"}

// ComputeTrends recomputes every gated trend scalar from fresh
// simulations at tiny scale. Deterministic: the same binary always
// returns the same values.
func ComputeTrends(ctx context.Context) ([]TrendValue, error) {
	var out []TrendValue

	// fig6: per-suite AIPC on the small and large machine, single
	// thread, plus the large/small speedup. The absolute AIPCs anchor
	// the simulator's performance level; the speedup is the trend.
	for _, suite := range trendSuites {
		var small, large float64
		for _, app := range trendApps[suite] {
			w, err := workload.ByName(app)
			if err != nil {
				return nil, err
			}
			inst := w.Build(workload.Tiny)
			for _, pt := range []struct {
				arch *area.Params
				dst  *float64
			}{{&trendArchSmall, &small}, {&trendArchLarge, &large}} {
				st, err := design.RunOnceContext(ctx, sim.Baseline(*pt.arch), inst, 1)
				if err != nil {
					return nil, fmt.Errorf("validate: fig6 %s/%s on %+v: %w", suite, app, *pt.arch, err)
				}
				*pt.dst += st.AIPC()
			}
		}
		n := float64(len(trendApps[suite]))
		small, large = small/n, large/n
		out = append(out,
			TrendValue{Name: "fig6_" + suite + "_aipc_small", Figure: "fig6", Value: round4(small)},
			TrendValue{Name: "fig6_" + suite + "_aipc_large", Figure: "fig6", Value: round4(large)},
			TrendValue{Name: "fig6_" + suite + "_speedup", Figure: "fig6", Value: round4(large / small)},
		)
	}

	// fig7: multi-cluster thread scaling on a parallel workload — the
	// 4-cluster machine must beat one cluster by a factor that tracks
	// the paper's near-linear scaling regime.
	{
		w, err := workload.ByName("fft")
		if err != nil {
			return nil, err
		}
		inst := w.Build(workload.Tiny)
		counts := []int{1, 4, 16}
		c1 := trendArchLarge
		c1.L2MB = 0
		c1.L1KB = 8
		c4 := area.Params{Clusters: 4, Domains: 4, PEs: 8, Virt: 32, Match: 32, L1KB: 8, L2MB: 0}
		b1, err := design.BestThreadsContext(ctx, sim.Baseline(c1), inst, counts)
		if err != nil {
			return nil, fmt.Errorf("validate: fig7 C1: %w", err)
		}
		b4, err := design.BestThreadsContext(ctx, sim.Baseline(c4), inst, counts)
		if err != nil {
			return nil, fmt.Errorf("validate: fig7 C4: %w", err)
		}
		out = append(out,
			TrendValue{Name: "fig7_fft_aipc_1c", Figure: "fig7", Value: round4(b1.AIPC)},
			TrendValue{Name: "fig7_fft_aipc_4c", Figure: "fig7", Value: round4(b4.AIPC)},
			TrendValue{Name: "fig7_fft_scaling_4c", Figure: "fig7", Value: round4(b4.AIPC / b1.AIPC)},
		)
	}

	// table4: matching-table tuning on one serial and one parallel
	// representative. k_opt/u_opt are integers (tolerance 0 in the
	// expectations); the max virtualization ratio is the number the
	// paper's design sweep consumes.
	{
		var tunings []design.Tuning
		for _, app := range []string{"equake", "fft"} {
			w, err := workload.ByName(app)
			if err != nil {
				return nil, err
			}
			tn, err := design.TuneContext(ctx, w, design.DefaultTuneOptions())
			if err != nil {
				return nil, fmt.Errorf("validate: table4 %s: %w", app, err)
			}
			tunings = append(tunings, tn)
			out = append(out,
				TrendValue{Name: "table4_" + app + "_kopt", Figure: "table4", Value: float64(tn.KOpt)},
				TrendValue{Name: "table4_" + app + "_uopt", Figure: "table4", Value: float64(tn.UOpt)},
			)
		}
		out = append(out, TrendValue{Name: "table4_max_ratio", Figure: "table4",
			Value: round4(design.MaxRatio(tunings))})
	}
	return out, nil
}

func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Drift compares recomputed trends against expectations. Metrics without
// an expectation pass with Tolerance -1 (informational); expectations
// without a metric land in Unmatched and fail the gate.
func Drift(trends []TrendValue, exp *Expectations) *DriftReport {
	want := map[string]ExpectedMetric{}
	for _, m := range exp.Metrics {
		want[m.Name] = m
	}
	rep := &DriftReport{Schema: DriftSchema, Pass: true}
	for _, tv := range trends {
		m := TrendMetric{Name: tv.Name, Figure: tv.Figure, Value: tv.Value, Tolerance: -1, Pass: true}
		if e, ok := want[tv.Name]; ok {
			delete(want, tv.Name)
			m.Expected = e.Value
			m.Tolerance = e.Tolerance
			m.Drift = round4(math.Abs(tv.Value-e.Value) / math.Max(math.Abs(e.Value), 1e-9))
			m.Pass = m.Drift <= e.Tolerance
			if !m.Pass {
				rep.Pass = false
			}
		}
		rep.Metrics = append(rep.Metrics, m)
	}
	for name := range want {
		rep.Unmatched = append(rep.Unmatched, name)
	}
	if len(rep.Unmatched) > 0 {
		sort.Strings(rep.Unmatched)
		rep.Pass = false
	}
	return rep
}

// ExpectationsFrom pins the given trends as the new expectations, with
// per-figure default tolerances: integers (table4 k/u) exact, ratios
// tight, absolute AIPCs a little looser.
func ExpectationsFrom(trends []TrendValue) *Expectations {
	exp := &Expectations{Schema: ExpectationsSchema}
	for _, tv := range trends {
		tol := 0.05
		switch {
		case tv.Figure == "table4" && tv.Name != "table4_max_ratio":
			tol = 0 // k_opt/u_opt are integers; any change is a real shift
		case tv.Figure == "table4":
			tol = 0.01
		case tv.Figure == "fig7":
			tol = 0.10 // scaling ratios wobble more at tiny scale
		}
		exp.Metrics = append(exp.Metrics, ExpectedMetric{Name: tv.Name, Value: tv.Value, Tolerance: tol})
	}
	return exp
}

// LoadExpectations reads and validates an expectations file.
func LoadExpectations(path string) (*Expectations, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var exp Expectations
	if err := json.Unmarshal(doc, &exp); err != nil {
		return nil, fmt.Errorf("validate: expectations %s: %w", path, err)
	}
	if exp.Schema != ExpectationsSchema {
		return nil, fmt.Errorf("validate: expectations %s: schema %q, want %q", path, exp.Schema, ExpectationsSchema)
	}
	return &exp, nil
}
