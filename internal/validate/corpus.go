package validate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The failure corpus: every divergence the harness ever caught and
// shrank, frozen as a checked-in witness. A corpus entry is the shrunk
// case plus its repro token; the regression suite replays every entry
// against the real simulator on every run, so a fixed bug that creeps
// back is caught by the exact minimal case that exposed it the first
// time — no fuzzing luck required.

// CorpusSchema versions the corpus entry format.
const CorpusSchema = "wavescalar-validate-corpus/v1"

// CorpusEntry is one exported failure witness.
type CorpusEntry struct {
	Schema string `json:"schema"`
	// Token replays the case (`wsvalidate -repro <token>`); Case is the
	// same case decoded, kept readable for humans diffing the corpus.
	Token  string `json:"token"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Case   Case   `json:"case"`
}

// ExportFailure writes a shrunk failure into dir as
// <kind>-<sha256(token)[:8]>.json — content-addressed, so re-exporting
// the same witness is idempotent and distinct witnesses never collide.
// It returns the written path.
func ExportFailure(dir string, f *Failure) (string, error) {
	if f.Repro == "" {
		return "", fmt.Errorf("validate: corpus export needs a repro token")
	}
	e := CorpusEntry{Schema: CorpusSchema, Token: f.Repro, Kind: f.Kind, Detail: f.Detail, Case: f.Case}
	doc, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", fmt.Errorf("validate: corpus marshal: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(f.Repro))
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.json", f.Kind, hex.EncodeToString(sum[:])[:8]))
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every witness in dir, sorted by filename for
// deterministic replay order. A missing directory is an empty corpus; a
// malformed or wrong-schema entry is an error — the corpus is checked
// in, so damage to it should fail loudly, not skip silently.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, de := range ents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	out := make([]CorpusEntry, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var e CorpusEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("validate: corpus entry %s: %w", name, err)
		}
		if e.Schema != CorpusSchema {
			return nil, fmt.Errorf("validate: corpus entry %s: schema %q, want %q", name, e.Schema, CorpusSchema)
		}
		out = append(out, e)
	}
	return out, nil
}
