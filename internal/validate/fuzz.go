package validate

import "fmt"

// FuzzOptions configures one fuzzing run.
type FuzzOptions struct {
	// Seed roots the seed tree (default 1); Seeds is how many cases to
	// draw from it (default 50).
	Seed  uint64
	Seeds int
	// Budget bounds total simulator runs; 0 means unlimited. The run
	// stops drawing new cases once the budget is spent (cases already
	// started finish), so a budgeted run is still deterministic for a
	// given (Seed, Seeds, Budget).
	Budget int
	// ShrinkBudget bounds the Check invocations spent minimizing each
	// failure (default 150).
	ShrinkBudget int
	// Monotone disables the nested-kill-fraction degradation check when
	// false... inverted: it is on by default; set SkipMonotone.
	SkipMonotone bool
	// CorpusDir, when set, exports every shrunk failure as a corpus
	// witness (see corpus.go) so a red run automatically grows the
	// checked-in regression corpus.
	CorpusDir string
	// Progress, when non-nil, receives one line per checked case.
	Progress func(i int, c Case, failed bool)
}

// FuzzReport is the machine-readable outcome of a fuzzing run. It
// contains no timestamps or durations: the same (seed, seeds, budget)
// tree produces a byte-identical report, which is what lets CI diff one
// run against another.
type FuzzReport struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	Seeds  int    `json:"seeds"`
	// Checked counts cases actually drawn (< Seeds if Budget ran out);
	// Sims the simulator runs spent, including shrinking.
	Checked int `json:"checked"`
	Sims    int `json:"sims"`
	// Faulted counts cases that carried a fault script; Degraded the
	// fault cases that deterministically stalled (accepted, not failures).
	Faulted int `json:"faulted"`
	// Monotone is the measured degradation curve (absent with
	// SkipMonotone).
	Monotone *MonotoneResult `json:"monotone,omitempty"`
	// Failures are the shrunk, tokenized divergences. Pass is their
	// absence.
	Failures []Failure `json:"failures"`
	Pass     bool      `json:"pass"`
}

// FuzzSchema versions the report format.
const FuzzSchema = "wavescalar-validate-fuzz/v1"

// Fuzz draws Seeds cases from the seed tree, checks each differentially
// and metamorphically, shrinks every failure to a minimal case, and
// stamps each with a repro token. Infrastructure errors (a generated
// case the harness itself cannot build) abort the run — the generator is
// supposed to stay inside the buildable space, so they are harness bugs,
// not simulator bugs.
func (ck *Checker) Fuzz(opt FuzzOptions) (*FuzzReport, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Seeds <= 0 {
		opt.Seeds = 50
	}
	rep := &FuzzReport{Schema: FuzzSchema, Seed: opt.Seed, Seeds: opt.Seeds, Failures: []Failure{}}

	for i := 0; i < opt.Seeds; i++ {
		if opt.Budget > 0 && ck.Sims >= opt.Budget {
			break
		}
		c := GenerateCase(CaseSeed(opt.Seed, i))
		if !c.Fault.Empty() {
			rep.Faulted++
		}
		f, err := ck.Check(c)
		if err != nil {
			return nil, fmt.Errorf("validate: seed %d case %d (%s): %w", opt.Seed, i, SeedToken(c.Seed), err)
		}
		rep.Checked++
		if opt.Progress != nil {
			opt.Progress(i, c, f != nil)
		}
		if f != nil {
			shrunk := ck.Shrink(c, f.Kind, opt.ShrinkBudget)
			final, err := ck.Check(shrunk)
			if err != nil || final == nil || final.Kind != f.Kind {
				// The shrunk case must still fail; if the harness lost the
				// failure along the way, report the original.
				final = f
				shrunk = c
			}
			final.Case = shrunk
			final.Repro = SeedToken(c.Seed)
			if shrunkDiffers(c, shrunk) {
				final.Repro = CaseToken(shrunk)
			}
			if opt.CorpusDir != "" {
				if _, err := ExportFailure(opt.CorpusDir, final); err != nil {
					return nil, fmt.Errorf("validate: exporting corpus witness: %w", err)
				}
			}
			rep.Failures = append(rep.Failures, *final)
		}
	}

	if !opt.SkipMonotone {
		mono, f, err := ck.CheckMonotone(MonotoneSpec{})
		if err != nil {
			return nil, err
		}
		rep.Monotone = mono
		if f != nil {
			f.Repro = "monotone"
			rep.Failures = append(rep.Failures, *f)
		}
	}
	rep.Sims = ck.Sims
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// shrunkDiffers reports whether shrinking changed the case (if not, the
// cheaper seed token reproduces it).
func shrunkDiffers(orig, shrunk Case) bool {
	return CaseToken(orig) != CaseToken(shrunk)
}
