package validate

import (
	"bytes"
	"compress/flate"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Repro tokens are the one-line currency of the harness: every failure
// prints one, and `wsvalidate -repro <token>` replays it. Two forms:
//
//	s:<seed>  — regenerate the case from its generator seed
//	c:<blob>  — a full case, flate-compressed canonical JSON in
//	            unpadded base64url (shrunk cases are no longer any
//	            seed's output, so they ship whole)
//
// Both encodings are deterministic, so a report containing tokens is
// byte-identical across runs of the same seed tree.

// SeedToken encodes a generator seed.
func SeedToken(seed uint64) string {
	return "s:" + strconv.FormatUint(seed, 10)
}

// CaseToken encodes a full case.
func CaseToken(c Case) string {
	doc, err := json.Marshal(c)
	if err != nil {
		// Case holds only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("validate: case marshal: %v", err))
	}
	var buf bytes.Buffer
	zw, _ := flate.NewWriter(&buf, flate.BestCompression)
	zw.Write(doc)
	zw.Close()
	return "c:" + base64.RawURLEncoding.EncodeToString(buf.Bytes())
}

// ParseToken decodes a repro token back into its case.
func ParseToken(token string) (Case, error) {
	kind, rest, ok := strings.Cut(token, ":")
	if !ok {
		return Case{}, fmt.Errorf("validate: token %q has no kind prefix (want s:<seed> or c:<blob>)", token)
	}
	switch kind {
	case "s":
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return Case{}, fmt.Errorf("validate: seed token %q: %v", token, err)
		}
		return GenerateCase(seed), nil
	case "c":
		raw, err := base64.RawURLEncoding.DecodeString(rest)
		if err != nil {
			return Case{}, fmt.Errorf("validate: case token: %v", err)
		}
		doc, err := io.ReadAll(flate.NewReader(bytes.NewReader(raw)))
		if err != nil {
			return Case{}, fmt.Errorf("validate: case token: %v", err)
		}
		var c Case
		if err := json.Unmarshal(doc, &c); err != nil {
			return Case{}, fmt.Errorf("validate: case token: %v", err)
		}
		return c, nil
	}
	return Case{}, fmt.Errorf("validate: unknown token kind %q (want s or c)", kind)
}
