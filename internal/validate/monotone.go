package validate

import (
	"fmt"

	"wavescalar/internal/fault"
	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/sim"
)

// MonotoneSpec parameterizes the nested-kill-fraction degradation
// invariant. The zero value selects the defaults.
type MonotoneSpec struct {
	// Fractions are the PE kill fractions, ascending (default
	// {0, 0.05, 0.10, 0.25}); Seed fixes the nested kill sets and Cycle
	// when they strike.
	Fractions []float64
	Seed      uint64
	Cycle     uint64
	// Threads and Iters size the throughput-bound probe workload.
	Threads int
	Iters   uint64
}

func (m MonotoneSpec) withDefaults() MonotoneSpec {
	if len(m.Fractions) == 0 {
		m.Fractions = []float64{0, 0.05, 0.10, 0.25}
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	if m.Cycle == 0 {
		m.Cycle = 200
	}
	if m.Threads == 0 {
		m.Threads = 8
	}
	if m.Iters == 0 {
		m.Iters = 40
	}
	return m
}

// MonotoneResult reports the degradation curve the check measured.
type MonotoneResult struct {
	Fractions []float64 `json:"fractions"`
	AIPC      []float64 `json:"aipc"`
}

// CheckMonotone verifies graceful degradation: under nested kill sets
// (the 25% set contains the 10% set, same seed), retained AIPC must be
// monotonically non-increasing, every thread must still compute the
// right answer, and no fraction may stall the machine.
//
// The probe is a wide independent-add loop rather than a bundled
// workload: its throughput is bound by alive-PE dispatch bandwidth, so
// removing resources must cost performance. (Narrow dependent chains can
// legitimately speed up under kills — consolidation onto fewer PEs
// improves bypass locality — which would make the invariant vacuous.)
func (ck *Checker) CheckMonotone(spec MonotoneSpec) (*MonotoneResult, *Failure, error) {
	spec = spec.withDefaults()
	const width = 48
	prog := wideLoop(width)
	params := make([]map[string]uint64, spec.Threads)
	for i := range params {
		params[i] = map[string]uint64{"n": spec.Iters}
	}
	// Per iteration i the body sums (i+j) for j in [0,width); accumulated
	// over i in [0, Iters).
	w := uint64(width)
	want := w*(spec.Iters-1)*spec.Iters/2 + spec.Iters*(w*(w-1)/2)

	res := &MonotoneResult{Fractions: spec.Fractions}
	describe := func(f float64) string {
		return fmt.Sprintf("kill fraction %.2f (seed %d, cycle %d, %d threads)",
			f, spec.Seed, spec.Cycle, spec.Threads)
	}
	for _, f := range spec.Fractions {
		cfg := sim.Baseline(sim.BaselineArch())
		cfg.MaxCycles = 5_000_000
		cfg.StallLimit = 200_000
		script, err := fault.KillFractionScript(sim.FaultShape(cfg), f, spec.Seed, spec.Cycle)
		if err != nil {
			return nil, nil, err
		}
		cfg.Fault = script
		ck.Sims++
		proc, err := sim.New(cfg, prog, params, nil)
		if err != nil {
			return nil, nil, err
		}
		st, err := proc.Run()
		if err != nil {
			return res, &Failure{Kind: KindSimError,
				Detail: fmt.Sprintf("%s: machine stalled instead of degrading: %v", describe(f), err)}, nil
		}
		for t := 0; t < spec.Threads; t++ {
			if got := proc.HaltValue(uint32(t)); got != want {
				return res, &Failure{Kind: KindHaltDiverged,
					Detail: fmt.Sprintf("%s: thread %d sum %d, want %d", describe(f), t, got, want)}, nil
			}
		}
		res.AIPC = append(res.AIPC, st.AIPC())
	}
	for i := 1; i < len(res.AIPC); i++ {
		if res.AIPC[i] > res.AIPC[i-1] {
			return res, &Failure{Kind: "degradation-not-monotone",
				Detail: fmt.Sprintf("AIPC %.4f at fraction %.2f exceeds %.4f at fraction %.2f",
					res.AIPC[i], spec.Fractions[i], res.AIPC[i-1], spec.Fractions[i-1])}, nil
		}
	}
	return res, nil, nil
}

// wideLoop builds the throughput-bound probe: a loop whose body is
// `width` independent adds reduced by a tree.
func wideLoop(width int) *isa.Program {
	b := graph.New("validate-wide")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	vs := []graph.Value{}
	for j := 0; j < width; j++ {
		vs = append(vs, b.AddI(i, uint64(j)))
	}
	for len(vs) > 1 {
		nv := []graph.Value{}
		for k := 0; k+1 < len(vs); k += 2 {
			nv = append(nv, b.Add(vs[k], vs[k+1]))
		}
		if len(vs)%2 == 1 {
			nv = append(nv, vs[len(vs)-1])
		}
		vs = nv
	}
	acc1 := b.Add(acc, vs[0])
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	return b.MustFinish()
}
