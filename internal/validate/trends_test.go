package validate

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeTestJSON(path string, v any) error {
	doc, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, doc, 0o644)
}

// TestDriftGate covers the comparison logic without any simulation.
func TestDriftGate(t *testing.T) {
	trends := []TrendValue{
		{Name: "a", Figure: "fig6", Value: 1.00},
		{Name: "b", Figure: "fig6", Value: 2.30},
		{Name: "new", Figure: "fig7", Value: 9.99},
	}
	exp := &Expectations{Schema: ExpectationsSchema, Metrics: []ExpectedMetric{
		{Name: "a", Value: 1.02, Tolerance: 0.05}, // within
		{Name: "b", Value: 2.00, Tolerance: 0.05}, // 15% out
		{Name: "gone", Value: 4, Tolerance: 0.1},  // stale
	}}
	rep := Drift(trends, exp)
	if rep.Pass {
		t.Fatalf("report passed despite drift and a stale expectation")
	}
	byName := map[string]TrendMetric{}
	for _, m := range rep.Metrics {
		byName[m.Name] = m
	}
	if !byName["a"].Pass {
		t.Errorf("metric a should pass: %+v", byName["a"])
	}
	if byName["b"].Pass {
		t.Errorf("metric b should fail: %+v", byName["b"])
	}
	if !byName["new"].Pass || byName["new"].Tolerance != -1 {
		t.Errorf("unpinned metric should pass informationally: %+v", byName["new"])
	}
	if !reflect.DeepEqual(rep.Unmatched, []string{"gone"}) {
		t.Errorf("unmatched = %v, want [gone]", rep.Unmatched)
	}

	// Exact-match tolerance: zero means any change fails.
	rep = Drift([]TrendValue{{Name: "k", Value: 2}},
		&Expectations{Metrics: []ExpectedMetric{{Name: "k", Value: 2, Tolerance: 0}}})
	if !rep.Pass {
		t.Errorf("exact integer match should pass")
	}
	rep = Drift([]TrendValue{{Name: "k", Value: 3}},
		&Expectations{Metrics: []ExpectedMetric{{Name: "k", Value: 2, Tolerance: 0}}})
	if rep.Pass {
		t.Errorf("integer shift should fail a zero-tolerance gate")
	}
}

// TestExpectationsRoundTrip: pinning trends and gating against the pin
// always passes, and the file round-trips through disk.
func TestExpectationsRoundTrip(t *testing.T) {
	trends := []TrendValue{
		{Name: "fig6_x_speedup", Figure: "fig6", Value: 0.92},
		{Name: "fig7_y_scaling", Figure: "fig7", Value: 3.99},
		{Name: "table4_z_kopt", Figure: "table4", Value: 2},
		{Name: "table4_max_ratio", Figure: "table4", Value: 1},
	}
	exp := ExpectationsFrom(trends)
	if !Drift(trends, exp).Pass {
		t.Fatalf("freshly pinned expectations must pass")
	}
	for _, m := range exp.Metrics {
		switch m.Name {
		case "table4_z_kopt":
			if m.Tolerance != 0 {
				t.Errorf("integer metric tolerance = %v, want 0", m.Tolerance)
			}
		case "fig7_y_scaling":
			if m.Tolerance != 0.10 {
				t.Errorf("fig7 tolerance = %v, want 0.10", m.Tolerance)
			}
		}
	}

	path := filepath.Join(t.TempDir(), "exp.json")
	if err := writeTestJSON(path, exp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExpectations(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("round trip:\n%+v\n%+v", got, exp)
	}
}

// TestTrendsWithinCheckedInExpectations recomputes every gated trend
// from live simulations and gates it against the repo's pinned
// expectations — the same check the nightly CI job runs.
func TestTrendsWithinCheckedInExpectations(t *testing.T) {
	if testing.Short() {
		t.Skip("full trend recomputation is slow")
	}
	exp, err := LoadExpectations(filepath.Join("..", "..", "results", "validate_expectations.json"))
	if err != nil {
		t.Fatalf("checked-in expectations: %v", err)
	}
	trends, err := ComputeTrends(context.Background())
	if err != nil {
		t.Fatalf("compute trends: %v", err)
	}
	rep := Drift(trends, exp)
	for _, m := range rep.Metrics {
		if !m.Pass {
			t.Errorf("drift: %s value %.4f expected %.4f (tolerance %.2f)", m.Name, m.Value, m.Expected, m.Tolerance)
		}
	}
	for _, name := range rep.Unmatched {
		t.Errorf("stale expectation: %s", name)
	}
}
