// Package validate is the continuous differential-validation harness
// keeping the timed simulator honest against its two sources of ground
// truth:
//
//   - the untimed reference interpreter (internal/ref) for *results* —
//     every generated case runs on both engines and any divergence in
//     halt values, final memory, or instruction counts is a failure;
//   - the paper's published fig6/fig7/table4 *trends* — recomputed from
//     fresh sweeps and compared against checked-in expectations with
//     per-figure tolerances (see trends.go).
//
// On top of the differential check the harness enforces the metamorphic
// invariants the simulator promises: run-to-run determinism, empty-fault-
// script ≡ faultless byte-identity, scheduler-strategy equivalence, and
// cache-hit ≡ recompute. Every case is generated from a seed (gen.go),
// every failure shrinks to a minimal reproduction (shrink.go), and every
// reproduction round-trips through a one-line token (token.go) — so a
// red nightly run is one `wsvalidate -repro <token>` away from a
// debugger.
//
// The harness exists so aggressive hot-path work (batched simulation,
// parallel cycle execution) can proceed behind a safety net that checks
// far more of the configuration × workload × fault space than the unit
// tests reach.
package validate

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"wavescalar/internal/area"
	"wavescalar/internal/fault"
	"wavescalar/internal/ref"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Case is one differential-validation input: a machine, a workload at a
// scale, a thread count, and an optional fault script. It is the unit of
// generation, checking, shrinking, and token round-tripping, so every
// field must be plain serializable data.
type Case struct {
	// Seed is the generator seed this case was drawn from (0 for
	// hand-built cases). Shrinking preserves it so a shrunk case keeps
	// selecting the same invariant variants as the original.
	Seed      uint64        `json:"seed,omitempty"`
	Arch      area.Params   `json:"arch"`
	K         int           `json:"k,omitempty"`
	Workload  string        `json:"workload"`
	Iters     int           `json:"iters"`
	Footprint int           `json:"footprint"`
	Threads   int           `json:"threads"`
	Fault     *fault.Script `json:"fault,omitempty"`
}

// Scale returns the case's workload scale.
func (c Case) Scale() workload.Scale {
	return workload.Scale{Iters: c.Iters, Footprint: c.Footprint}
}

// Describe renders the case as a short human-readable block — what
// wsvalidate prints next to a failure, compact enough that a shrunk
// repro fits in a terminal glance.
func (c Case) Describe() string {
	a := c.Arch
	s := fmt.Sprintf("arch:     C%d D%d P%d V%d M%d L1:%dKB L2:%dMB\n",
		a.Clusters, a.Domains, a.PEs, a.Virt, a.Match, a.L1KB, a.L2MB)
	if c.K > 0 {
		s += fmt.Sprintf("k:        %d\n", c.K)
	}
	s += fmt.Sprintf("workload: %s (iters=%d footprint=%d) threads=%d\n",
		c.Workload, c.Iters, c.Footprint, c.Threads)
	if !c.Fault.Empty() {
		s += fmt.Sprintf("fault:    %d events, rates link=%g mem=%g/%g sb=%g (seed %d)\n",
			len(c.Fault.Events), c.Fault.LinkFlipRate, c.Fault.MemDelayRate,
			c.Fault.MemDropRate, c.Fault.SBDelayRate, c.Fault.Seed)
	}
	return s
}

// Config returns the simulator configuration the case describes: the
// paper's baseline microarchitecture on the case's machine, with run
// bounds tight enough that a pathological case fails fast instead of
// burning the fuzzing budget.
func (c Case) Config() sim.Config {
	cfg := sim.Baseline(c.Arch)
	if c.K > 0 {
		cfg.K = c.K
	}
	cfg.MaxCycles = 5_000_000
	cfg.StallLimit = 200_000
	cfg.Fault = c.Fault
	return cfg
}

// Failure is one validation failure: the case that produced it, the
// invariant it broke, and enough detail to read the report without
// replaying anything.
type Failure struct {
	Case   Case   `json:"case"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Repro is the one-line reproduction token (filled by the fuzz loop
	// after shrinking; see token.go).
	Repro string `json:"repro,omitempty"`
}

// Failure kinds.
const (
	KindSimError       = "sim-error"       // sim failed where the reference succeeded
	KindHaltDiverged   = "halt-divergence" // per-thread halt values differ
	KindMemDiverged    = "memory-divergence"
	KindCountDiverged  = "count-divergence" // dynamic/countable instruction totals differ
	KindNondeterminism = "nondeterminism"   // identical runs, different outcomes
	KindFaultIdentity  = "fault-identity"   // empty fault script ≠ faultless run
	KindSchedDiverged  = "sched-divergence" // full-scan ≠ active-set scheduler
	KindCacheDiverged  = "cache-divergence" // cache hit ≠ recompute
	KindBatchDiverged  = "batch-divergence" // batched lane ≠ dedicated run
)

func (f *Failure) Error() string {
	return fmt.Sprintf("validate: %s: %s", f.Kind, f.Detail)
}

// SimOutcome is everything the harness compares about one simulator run.
// Err records a deterministic run failure (stall, deadlock); outcomes
// with Err set carry no result fields but still participate in the
// determinism check.
type SimOutcome struct {
	Stats      *sim.Stats
	HaltValues []uint64
	Mem        map[uint64]uint64
	Err        error
}

// digest folds an outcome into one comparable string: the full Stats
// digest (which covers every counter), halt values, a canonical memory
// hash, and the error text.
func (o *SimOutcome) digest() string {
	h := sha256.New()
	if o.Stats != nil {
		fmt.Fprintf(h, "stats|%s", o.Stats.Digest())
	}
	fmt.Fprintf(h, "|halts|%v", o.HaltValues)
	if o.Mem != nil {
		addrs := make([]uint64, 0, len(o.Mem))
		for a := range o.Mem {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(h, "|%x=%x", a, o.Mem[a])
		}
	}
	if o.Err != nil {
		fmt.Fprintf(h, "|err|%s", o.Err)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// RunSimFunc executes one simulator run for the harness. The default
// (nil) runs the real simulator; tests inject wrappers that corrupt
// results to prove the harness catches and shrinks real divergence.
type RunSimFunc func(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error)

// Checker runs differential and metamorphic checks on cases. The zero
// value checks against the real simulator.
type Checker struct {
	// RunSim overrides how simulator runs execute (nil = real simulator).
	// Every sim-side run — the differential run, the determinism rerun,
	// and the fault-identity and scheduler variants — goes through it.
	RunSim RunSimFunc
	// Batched routes every real simulator run through a one-lane batch
	// (RealSimBatched), so a fuzzing pass exercises the batch runner's
	// code paths on every case instead of only in the batch variant.
	// Ignored when RunSim is set.
	Batched bool
	// Sims counts simulator runs performed, for budget accounting.
	Sims int
}

// runSim dispatches to the hook or the real simulator. The returned
// error means the run could not be built (bad config for this machine) —
// an infrastructure problem, not a divergence; deterministic run
// failures land in SimOutcome.Err.
func (ck *Checker) runSim(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
	ck.Sims++
	fn := ck.RunSim
	if fn == nil {
		fn = RealSim
		if ck.Batched {
			fn = RealSimBatched
		}
	}
	return fn(cfg, inst, threads)
}

// RealSim runs the real cycle-level simulator and extracts the outcome —
// the default RunSimFunc, exported so test wrappers can delegate to it.
func RealSim(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
	proc, err := sim.New(cfg, inst.Prog, inst.Params(threads), sim.Memory(inst.Mem))
	if err != nil {
		return nil, err
	}
	st, rerr := proc.Run()
	out := &SimOutcome{Stats: st, Err: rerr}
	if rerr == nil {
		out.HaltValues = make([]uint64, threads)
		for t := 0; t < threads; t++ {
			out.HaltValues[t] = proc.HaltValue(uint32(t))
		}
		out.Mem = proc.Mem()
	}
	return out, nil
}

// RealSimBatched runs one case through a one-lane batch — the batch
// runner's build-share and stepper machinery with none of the lane
// interleaving — and extracts the same outcome RealSim would. Used when
// Checker.Batched is set so every fuzz case also validates the batch
// path.
func RealSimBatched(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
	b, err := sim.NewBatch(inst.Prog, sim.Memory(inst.Mem), []sim.Lane{{Config: cfg, Params: inst.Params(threads)}})
	if err != nil {
		return nil, err
	}
	if berr := b.BuildErr(0); berr != nil {
		return nil, berr
	}
	r := b.Run()[0]
	out := &SimOutcome{Stats: r.Stats, Err: r.Err}
	if r.Err == nil {
		out.HaltValues = r.HaltValues
		out.Mem = map[uint64]uint64(r.Mem)
	}
	return out, nil
}

// Check runs the full per-case validation: the sim-vs-ref differential
// comparison, the determinism rerun, and — selected deterministically by
// the case seed — one of the metamorphic variants (fault identity,
// scheduler equivalence, cache-hit ≡ recompute). It returns a non-nil
// Failure on divergence, or an error for infrastructure problems
// (unknown workload, unbuildable config) that are neither pass nor fail.
func (ck *Checker) Check(c Case) (*Failure, error) {
	w, err := workload.ByName(c.Workload)
	if err != nil {
		return nil, err
	}
	sc := c.Scale()
	if sc.Iters <= 0 || sc.Footprint <= 0 {
		return nil, fmt.Errorf("validate: case scale %+v not positive", sc)
	}
	inst := w.Build(sc)
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	if threads > inst.MaxThreads {
		threads = inst.MaxThreads
	}
	cfg := c.Config()

	// The reference is ground truth; it cannot fail on a bundled
	// workload, so a reference error is an infrastructure error.
	refRes, err := ref.RunThreads(inst.Prog, inst.Mem, inst.Params(threads))
	if err != nil {
		return nil, fmt.Errorf("validate: reference run: %w", err)
	}

	out, err := ck.runSim(cfg, inst, threads)
	if err != nil {
		return nil, fmt.Errorf("validate: building simulator: %w", err)
	}

	// Determinism: the same case must produce a byte-identical outcome —
	// including identical failures.
	again, err := ck.runSim(cfg, inst, threads)
	if err != nil {
		return nil, fmt.Errorf("validate: building simulator (rerun): %w", err)
	}
	if d1, d2 := out.digest(), again.digest(); d1 != d2 {
		return &Failure{Case: c, Kind: KindNondeterminism,
			Detail: fmt.Sprintf("two identical runs diverged: outcome %s vs %s", d1, d2)}, nil
	}

	if out.Err != nil {
		// Under injected faults the machine may deterministically stall
		// (partitioned fabric, exhausted retries) — degraded, not wrong.
		// Anything else, or any failure on a clean run, is a divergence:
		// the reference completed this exact program.
		if !c.Fault.Empty() && (errors.Is(out.Err, sim.ErrFaultStall) || errors.Is(out.Err, sim.ErrMemFault)) {
			return nil, nil
		}
		return &Failure{Case: c, Kind: KindSimError,
			Detail: fmt.Sprintf("simulator failed where the reference succeeded: %v", out.Err)}, nil
	}

	if f := diffOutcome(c, out, refRes, threads); f != nil {
		return f, nil
	}
	return ck.checkVariant(c, cfg, inst, threads, out)
}

// diffOutcome compares a completed simulator outcome against the
// reference: per-thread halt values, the final memory image, and — on
// clean runs — the aggregate dynamic/countable instruction counts.
func diffOutcome(c Case, out *SimOutcome, refRes *ref.ThreadsResult, threads int) *Failure {
	for t := 0; t < threads; t++ {
		if out.HaltValues[t] != refRes.HaltValues[t] {
			return &Failure{Case: c, Kind: KindHaltDiverged,
				Detail: fmt.Sprintf("thread %d halt value: sim %d, ref %d", t, out.HaltValues[t], refRes.HaltValues[t])}
		}
	}
	if f := diffMemory(c, out.Mem, refRes.Mem); f != nil {
		return f
	}
	if c.Fault.Empty() {
		// Fault-degraded runs may legitimately re-execute work. On clean
		// runs the countable (architectural) total must match the
		// reference exactly; the dynamic total may exceed it — speculative
		// fires replay instructions — but can never fall below it, since
		// the simulator cannot skip work the reference performed.
		if out.Stats.Countable != refRes.Countable || out.Stats.Dynamic < refRes.Dynamic {
			return &Failure{Case: c, Kind: KindCountDiverged,
				Detail: fmt.Sprintf("instruction counts: sim dynamic=%d countable=%d, ref dynamic=%d countable=%d (countable must match, dynamic must not undercount)",
					out.Stats.Dynamic, out.Stats.Countable, refRes.Dynamic, refRes.Countable)}
		}
	}
	return nil
}

// diffMemory compares final memory images in both directions, reporting
// the lowest few differing addresses.
func diffMemory(c Case, simMem map[uint64]uint64, refMem ref.Memory) *Failure {
	var bad []uint64
	for a, v := range simMem {
		if rv, ok := refMem[a]; !ok || rv != v {
			bad = append(bad, a)
		}
	}
	for a := range refMem {
		if _, ok := simMem[a]; !ok {
			bad = append(bad, a)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	const keep = 4
	detail := fmt.Sprintf("%d differing addresses;", len(bad))
	for i, a := range bad {
		if i == keep {
			detail += " ..."
			break
		}
		sv, sok := simMem[a]
		rv, rok := refMem[a]
		detail += fmt.Sprintf(" [0x%x] sim=%d(%v) ref=%d(%v)", a, sv, sok, rv, rok)
	}
	return &Failure{Case: c, Kind: KindMemDiverged, Detail: detail}
}

// checkVariant runs one metamorphic variant, selected deterministically
// by the case seed so a shrunk case (which keeps its seed) re-runs the
// same variant and the repro token replays the same work.
func (ck *Checker) checkVariant(c Case, cfg sim.Config, inst *workload.Instance, threads int, out *SimOutcome) (*Failure, error) {
	switch fault.Mix(c.Seed, 0x1A11) % 4 {
	case 0:
		return ck.checkFaultIdentity(c, cfg, inst, threads, out)
	case 1:
		return ck.checkSched(c, cfg, inst, threads, out)
	case 2:
		return ck.checkCache(c, cfg, threads)
	default:
		return ck.checkBatch(c, cfg, inst, threads, out)
	}
}

// checkFaultIdentity verifies the empty-script identity: attaching an
// explicitly empty fault script must leave the run byte-identical to a
// faultless one. Cases that carry a real script skip it (their script is
// not empty); the generator leaves most cases clean, so the identity is
// exercised at every seed count.
func (ck *Checker) checkFaultIdentity(c Case, cfg sim.Config, inst *workload.Instance, threads int, out *SimOutcome) (*Failure, error) {
	if !c.Fault.Empty() {
		return nil, nil
	}
	empty := cfg
	empty.Fault = &fault.Script{}
	eout, err := ck.runSim(empty, inst, threads)
	if err != nil {
		return nil, fmt.Errorf("validate: building simulator (empty script): %w", err)
	}
	if d1, d2 := out.digest(), eout.digest(); d1 != d2 {
		return &Failure{Case: c, Kind: KindFaultIdentity,
			Detail: fmt.Sprintf("empty fault script changed the outcome: %s vs %s", d1, d2)}, nil
	}
	return nil, nil
}

// checkBatch verifies the batch-execution invariant: running the case's
// config as two identical lanes of one batch must give each lane an
// outcome byte-identical to the dedicated run — the guarantee that lets
// sweeps batch design points without moving a single cached digest.
func (ck *Checker) checkBatch(c Case, cfg sim.Config, inst *workload.Instance, threads int, out *SimOutcome) (*Failure, error) {
	params := inst.Params(threads)
	b, err := sim.NewBatch(inst.Prog, sim.Memory(inst.Mem), []sim.Lane{
		{Config: cfg, Params: params},
		{Config: cfg, Params: params},
	})
	if err != nil {
		return nil, fmt.Errorf("validate: building batch: %w", err)
	}
	for i := 0; i < b.Lanes(); i++ {
		if berr := b.BuildErr(i); berr != nil {
			return nil, fmt.Errorf("validate: building batch lane %d: %w", i, berr)
		}
	}
	ck.Sims += b.Lanes()
	want := out.digest()
	for i, r := range b.Run() {
		bo := &SimOutcome{Stats: r.Stats, Err: r.Err}
		if r.Err == nil {
			bo.HaltValues = r.HaltValues
			bo.Mem = map[uint64]uint64(r.Mem)
		}
		if d := bo.digest(); d != want {
			return &Failure{Case: c, Kind: KindBatchDiverged,
				Detail: fmt.Sprintf("batched lane %d diverged from the dedicated run: %s vs %s", i, d, want)}, nil
		}
	}
	return nil, nil
}

// checkSched verifies scheduler-strategy equivalence: the full-scan
// oracle must produce an outcome byte-identical to the active-set
// default, including identical Stats.
func (ck *Checker) checkSched(c Case, cfg sim.Config, inst *workload.Instance, threads int, out *SimOutcome) (*Failure, error) {
	full := cfg
	full.Sched = sim.SchedFullScan
	fout, err := ck.runSim(full, inst, threads)
	if err != nil {
		return nil, fmt.Errorf("validate: building simulator (full scan): %w", err)
	}
	if d1, d2 := out.digest(), fout.digest(); d1 != d2 {
		return &Failure{Case: c, Kind: KindSchedDiverged,
			Detail: fmt.Sprintf("full-scan scheduler diverged from active set: %s vs %s", d1, d2)}, nil
	}
	return nil, nil
}
