package validate

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// TestFuzzCleanDeterministic runs a small fuzzing pass against the real
// simulator twice: both passes must find nothing and produce
// byte-identical reports.
func TestFuzzCleanDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing pass is slow")
	}
	run := func() []byte {
		ck := &Checker{}
		rep, err := ck.Fuzz(FuzzOptions{Seed: 7, Seeds: 12, SkipMonotone: true})
		if err != nil {
			t.Fatalf("fuzz: %v", err)
		}
		for _, f := range rep.Failures {
			t.Errorf("unexpected failure: %s (%s) repro %s", f.Kind, f.Detail, f.Repro)
		}
		if !rep.Pass {
			t.Fatalf("clean fuzz run did not pass")
		}
		if rep.Checked != 12 {
			t.Fatalf("checked %d cases, want 12", rep.Checked)
		}
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return doc
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical fuzz runs produced different reports:\n%s\n--- vs ---\n%s", a, b)
	}
}

// TestMonotoneDegradation checks the nested-kill-fraction invariant end
// to end against the real simulator.
func TestMonotoneDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("monotone probe is slow")
	}
	ck := &Checker{}
	res, f, err := ck.CheckMonotone(MonotoneSpec{})
	if err != nil {
		t.Fatalf("monotone: %v", err)
	}
	if f != nil {
		t.Fatalf("monotone invariant failed: %s: %s", f.Kind, f.Detail)
	}
	if len(res.AIPC) != 4 {
		t.Fatalf("got %d AIPC points, want 4", len(res.AIPC))
	}
	if res.AIPC[0] <= res.AIPC[len(res.AIPC)-1] {
		t.Errorf("killing 25%% of PEs did not cost throughput: AIPC %v", res.AIPC)
	}
}

// TestGenerateCaseDeterministic: a case is a pure function of its seed,
// and distinct seeds explore distinct corners.
func TestGenerateCaseDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42, 1 << 40} {
		a, b := GenerateCase(seed), GenerateCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenerateCase not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
	distinct := map[string]bool{}
	for i := 0; i < 50; i++ {
		c := GenerateCase(CaseSeed(1, i))
		distinct[c.Workload] = true
		if err := c.Config().Validate(); err != nil {
			t.Errorf("seed tree case %d: invalid config: %v", i, err)
		}
	}
	if len(distinct) < 5 {
		t.Errorf("50 cases hit only %d distinct workloads", len(distinct))
	}
}

// TestTokenRoundTrip covers both token forms.
func TestTokenRoundTrip(t *testing.T) {
	seed := CaseSeed(3, 14)
	c := GenerateCase(seed)

	got, err := ParseToken(SeedToken(seed))
	if err != nil {
		t.Fatalf("seed token: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("seed token round trip:\n%+v\n%+v", got, c)
	}

	// Mutate so the case is no longer any seed's output — the shape a
	// shrunk case has.
	c.Threads = 1
	c.Arch.Clusters = 1
	tok := CaseToken(c)
	got, err = ParseToken(tok)
	if err != nil {
		t.Fatalf("case token: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("case token round trip:\n%+v\n%+v", got, c)
	}

	for _, bad := range []string{"", "x", "q:1", "s:notanumber", "c:!!!", "c:AAAA"} {
		if _, err := ParseToken(bad); err == nil {
			t.Errorf("ParseToken(%q) accepted garbage", bad)
		}
	}
}

// buggySim corrupts thread 0's halt value on machines with at least two
// clusters — a stand-in for a real cross-cluster steering bug.
func buggySim(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
	out, err := RealSim(cfg, inst, threads)
	if err == nil && out.Err == nil && cfg.Arch.Clusters >= 2 {
		out.HaltValues[0]++
	}
	return out, err
}

// TestInjectedBugCaughtAndShrunk proves the harness catches an injected
// simulator bug, shrinks the failing case to a minimal repro, and prints
// a token that replays it.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking is slow")
	}
	ck := &Checker{RunSim: buggySim}
	rep, err := ck.Fuzz(FuzzOptions{Seed: 1, Seeds: 20, SkipMonotone: true})
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if rep.Pass || len(rep.Failures) == 0 {
		t.Fatalf("injected bug not caught in 20 seeds")
	}
	f := rep.Failures[0]
	if f.Kind != KindHaltDiverged && f.Kind != KindNondeterminism {
		t.Fatalf("caught kind %s, want %s", f.Kind, KindHaltDiverged)
	}

	// The shrunk case must be minimal: the bug needs two clusters, so
	// shrinking must stop there while flattening everything else.
	if f.Case.Arch.Clusters < 2 {
		t.Errorf("shrunk case lost the bug trigger: %+v", f.Case)
	}
	if f.Case.Threads > 1 {
		t.Errorf("shrunk case kept %d threads", f.Case.Threads)
	}
	desc := f.Case.Describe()
	if lines := strings.Count(strings.TrimRight(desc, "\n"), "\n") + 1; lines > 10 {
		t.Errorf("shrunk repro is %d lines, want <= 10:\n%s", lines, desc)
	}

	// The token must replay to the same failure.
	if f.Repro == "" {
		t.Fatalf("failure carries no repro token")
	}
	replay, err := ParseToken(f.Repro)
	if err != nil {
		t.Fatalf("parse repro token: %v", err)
	}
	rf, err := ck.Check(replay)
	if err != nil {
		t.Fatalf("replay check: %v", err)
	}
	if rf == nil || rf.Kind != f.Kind {
		t.Fatalf("replayed token did not reproduce the %s failure: %+v", f.Kind, rf)
	}
}

// TestShrinkRejectsDifferentKind: shrinking never wanders to a different
// bug — candidates failing with another kind are rejected.
func TestShrinkRejectsDifferentKind(t *testing.T) {
	c := GenerateCase(CaseSeed(1, 0))
	calls := 0
	ck := &Checker{RunSim: func(cfg sim.Config, inst *workload.Instance, threads int) (*SimOutcome, error) {
		calls++
		out, err := RealSim(cfg, inst, threads)
		if err != nil || out.Err != nil {
			return out, err
		}
		if threads > 1 {
			out.HaltValues[0]++ // halt-divergence only with >1 thread
		} else {
			out.Mem[0xdead] = 1 // memory-divergence otherwise
		}
		return out, err
	}}
	c.Threads = 4
	c.Workload = "fft" // splash: supports many threads
	f, err := ck.Check(c)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if f == nil || f.Kind != KindHaltDiverged {
		t.Fatalf("setup: want halt divergence, got %+v", f)
	}
	shrunk := ck.Shrink(c, f.Kind, 60)
	if shrunk.Threads <= 1 {
		t.Errorf("shrink crossed into a different failure kind: threads=%d", shrunk.Threads)
	}
	if calls == 0 {
		t.Fatalf("hook never ran")
	}
}
